package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	mctsui "repro"
)

// exportCache GETs /v1/cache/export and returns the raw snapshot bytes.
func exportCache(t *testing.T, base string) []byte {
	t.Helper()
	status, body := get(t, base+"/v1/cache/export")
	if status != http.StatusOK {
		t.Fatalf("export: status %d: %s", status, body)
	}
	if len(body) == 0 {
		t.Fatal("export: empty snapshot")
	}
	return body
}

// importCache POSTs raw snapshot bytes to /v1/cache/import.
func importCache(t *testing.T, base string, snap []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/cache/import", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("POST import: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read import response: %v", err)
	}
	return resp.StatusCode, out
}

func TestCacheExportImportRoundTrip(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	req := GenerateRequest{SearchParams: fastParams, Queries: figure1}
	if status, body := post(t, tsA.URL+"/v1/generate", req); status != http.StatusOK {
		t.Fatalf("warm generate: status %d: %s", status, body)
	}
	snap := exportCache(t, tsA.URL)

	_, tsB := newTestServer(t, Config{})
	status, body := importCache(t, tsB.URL, snap)
	if status != http.StatusOK {
		t.Fatalf("import: status %d: %s", status, body)
	}
	var ir ImportResponse
	if err := decodeInto(body, &ir); err != nil {
		t.Fatalf("bad import response %s: %v", body, err)
	}
	if ir.Entries <= 0 {
		t.Fatalf("import merged %d entries", ir.Entries)
	}
	// Re-import is idempotent and reports the same entry count.
	status, body = importCache(t, tsB.URL, snap)
	if status != http.StatusOK {
		t.Fatalf("re-import: status %d: %s", status, body)
	}
	var ir2 ImportResponse
	if err := decodeInto(body, &ir2); err != nil {
		t.Fatal(err)
	}
	if ir2.Entries != ir.Entries {
		t.Fatalf("re-import merged %d entries, first import %d", ir2.Entries, ir.Entries)
	}
}

// TestCacheWarmShippingByteIdentity is the cross-process handoff story:
// daemon A serves a workload and exports its cache; a fresh daemon B imports
// it and serves the same trace. B's responses must be byte-identical to A's
// — the determinism contract means shipped warmth can change only speed,
// never answers — and B must be warm from its very first request.
func TestCacheWarmShippingByteIdentity(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	// A small trace with distinct seeds/budgets so several responses exist.
	trace := []GenerateRequest{
		{SearchParams: SearchParams{Iterations: 8, Seed: 7}, Queries: figure1},
		{SearchParams: SearchParams{Iterations: 12, Seed: 3}, Queries: figure1},
		{SearchParams: SearchParams{Iterations: 8, Seed: 7, Strategy: "beam:4"}, Queries: figure1},
	}
	responsesA := make([][]byte, len(trace))
	for i, req := range trace {
		status, body := post(t, tsA.URL+"/v1/generate", req)
		if status != http.StatusOK {
			t.Fatalf("daemon A request %d: status %d: %s", i, status, body)
		}
		responsesA[i] = body
	}
	snap := exportCache(t, tsA.URL)

	cacheB := mctsui.NewCache(0)
	_, tsB := newTestServer(t, Config{Cache: cacheB})
	if status, body := importCache(t, tsB.URL, snap); status != http.StatusOK {
		t.Fatalf("daemon B import: status %d: %s", status, body)
	}
	for i, req := range trace {
		status, body := post(t, tsB.URL+"/v1/generate", req)
		if status != http.StatusOK {
			t.Fatalf("daemon B request %d: status %d: %s", i, status, body)
		}
		if !bytes.Equal(body, responsesA[i]) {
			t.Errorf("request %d: daemon B response differs from daemon A\nA: %s\nB: %s", i, responsesA[i], body)
		}
	}
	// Warm from the first request: B recomputes only the non-portable
	// aspects (moves/pools) against imported verdicts, so its cost/legality
	// lookups hit. Cold-serving this trace yields a near-zero early hit
	// rate; warm-shipped it must be solidly above half.
	st := cacheB.Stats()
	if st.Hits == 0 {
		t.Fatal("daemon B cache saw no hits")
	}
	if rate := st.HitRate(); rate < 0.5 {
		t.Errorf("daemon B hit rate %.3f, want >= 0.5 (warm from first request); stats %+v", rate, st)
	}
}

func TestCacheImportRejectsGarbage(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, body := importCache(t, ts.URL, []byte("definitely not a snapshot"))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("garbage import: status %d: %s", status, body)
	}
	if st := s.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("garbage import planted %d entries", st.Entries)
	}

	// Truncated real snapshot: same rejection, same untouched cache.
	req := GenerateRequest{SearchParams: fastParams, Queries: figure1}
	if st, b := post(t, ts.URL+"/v1/generate", req); st != http.StatusOK {
		t.Fatalf("warm generate: status %d: %s", st, b)
	}
	snap := exportCache(t, ts.URL)
	fresh, tsFresh := newTestServer(t, Config{})
	if status, _ := importCache(t, tsFresh.URL, snap[:len(snap)/2]); status != http.StatusUnprocessableEntity {
		t.Fatalf("truncated import: status %d", status)
	}
	if st := fresh.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("truncated import planted %d entries", st.Entries)
	}
}

func TestCacheImportTooLarge(t *testing.T) {
	// A real, well-formed snapshot that exceeds the receiver's byte limit:
	// the decoder runs into the cap mid-parse and must answer 413, not 422.
	_, warm := newTestServer(t, Config{})
	req := GenerateRequest{SearchParams: fastParams, Queries: figure1}
	if status, body := post(t, warm.URL+"/v1/generate", req); status != http.StatusOK {
		t.Fatalf("warm generate: status %d: %s", status, body)
	}
	snap := exportCache(t, warm.URL)

	small, ts := newTestServer(t, Config{MaxSnapshotBytes: 64})
	if int64(len(snap)) <= 64 {
		t.Fatalf("snapshot unexpectedly small: %d bytes", len(snap))
	}
	status, body := importCache(t, ts.URL, snap)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized import: status %d: %s", status, body)
	}
	if st := small.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("oversized import planted %d entries", st.Entries)
	}
}

func TestCacheSnapshotDrainSemantics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := GenerateRequest{SearchParams: fastParams, Queries: figure1}
	if status, body := post(t, ts.URL+"/v1/generate", req); status != http.StatusOK {
		t.Fatalf("generate: status %d: %s", status, body)
	}
	snap := exportCache(t, ts.URL)

	s.Drain()
	// Export survives drain: capturing warmth on the way down is the point.
	if got := exportCache(t, ts.URL); !bytes.Equal(got, snap) {
		t.Error("export while draining returned different bytes than before drain")
	}
	// Import is refused: a daemon shutting down takes no new warmth.
	if status, body := importCache(t, ts.URL, snap); status != http.StatusServiceUnavailable {
		t.Fatalf("import while draining: status %d: %s", status, body)
	}
}

func TestCacheExportConcurrencyConflict(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Hold the transfer slot directly; a concurrent export must 409, not queue.
	s.snapSem <- struct{}{}
	defer func() { <-s.snapSem }()
	status, body := get(t, ts.URL+"/v1/cache/export")
	if status != http.StatusConflict {
		t.Fatalf("concurrent export: status %d: %s", status, body)
	}
	if status, _ := importCache(t, ts.URL, []byte("x")); status != http.StatusConflict {
		t.Fatalf("concurrent import: status %d", status)
	}
}

// decodeInto is a tiny JSON helper for snapshot responses.
func decodeInto(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decode %s: %w", data, err)
	}
	return nil
}
