package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"testing"

	mctsui "repro"
	"repro/internal/api"
	"repro/internal/api/client"
)

// exportCache streams /v1/cache/export through the typed client and returns
// the raw snapshot bytes.
func exportCache(t *testing.T, base string) []byte {
	t.Helper()
	rc, err := testClient(base).ExportCache(context.Background())
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	defer rc.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(rc); err != nil {
		t.Fatalf("read export: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("export: empty snapshot")
	}
	return buf.Bytes()
}

// importCache uploads snapshot bytes to /v1/cache/import through the typed
// client, returning the HTTP status and (on 200) the decoded response.
func importCache(t *testing.T, base string, snap []byte) (int, *api.CacheImportResponse) {
	t.Helper()
	resp, err := testClient(base).ImportCache(context.Background(), bytes.NewReader(snap))
	if err == nil {
		return http.StatusOK, resp
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		return se.Code, nil
	}
	t.Fatalf("POST import: %v", err)
	return 0, nil
}

func TestCacheExportImportRoundTrip(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	req := api.GenerateRequest{SearchParams: fastParams, Queries: figure1}
	if status, body := post(t, tsA.URL+"/v1/generate", req); status != http.StatusOK {
		t.Fatalf("warm generate: status %d: %s", status, body)
	}
	snap := exportCache(t, tsA.URL)

	_, tsB := newTestServer(t, Config{})
	status, ir := importCache(t, tsB.URL, snap)
	if status != http.StatusOK || ir == nil {
		t.Fatalf("import: status %d", status)
	}
	if ir.Entries <= 0 {
		t.Fatalf("import merged %d entries", ir.Entries)
	}
	// Re-import is idempotent and reports the same entry count.
	status, ir2 := importCache(t, tsB.URL, snap)
	if status != http.StatusOK || ir2 == nil {
		t.Fatalf("re-import: status %d", status)
	}
	if ir2.Entries != ir.Entries {
		t.Fatalf("re-import merged %d entries, first import %d", ir2.Entries, ir.Entries)
	}
}

// TestCacheWarmShippingByteIdentity is the cross-process handoff story:
// daemon A serves a workload and exports its cache; a fresh daemon B imports
// it and serves the same trace. B's responses must be byte-identical to A's
// — the determinism contract means shipped warmth can change only speed,
// never answers — and B must be warm from its very first request.
func TestCacheWarmShippingByteIdentity(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	// A small trace with distinct seeds/budgets so several responses exist.
	trace := []api.GenerateRequest{
		{SearchParams: api.SearchParams{Iterations: 8, Seed: 7}, Queries: figure1},
		{SearchParams: api.SearchParams{Iterations: 12, Seed: 3}, Queries: figure1},
		{SearchParams: api.SearchParams{Iterations: 8, Seed: 7, Strategy: "beam:4"}, Queries: figure1},
	}
	responsesA := make([][]byte, len(trace))
	for i, req := range trace {
		status, body := post(t, tsA.URL+"/v1/generate", req)
		if status != http.StatusOK {
			t.Fatalf("daemon A request %d: status %d: %s", i, status, body)
		}
		responsesA[i] = body
	}
	snap := exportCache(t, tsA.URL)

	cacheB := mctsui.NewCache(0)
	_, tsB := newTestServer(t, Config{Cache: cacheB})
	if status, _ := importCache(t, tsB.URL, snap); status != http.StatusOK {
		t.Fatalf("daemon B import: status %d", status)
	}
	for i, req := range trace {
		status, body := post(t, tsB.URL+"/v1/generate", req)
		if status != http.StatusOK {
			t.Fatalf("daemon B request %d: status %d: %s", i, status, body)
		}
		if !bytes.Equal(body, responsesA[i]) {
			t.Errorf("request %d: daemon B response differs from daemon A\nA: %s\nB: %s", i, responsesA[i], body)
		}
	}
	// Warm from the first request: B recomputes only the non-portable
	// aspects (moves/pools) against imported verdicts, so its cost/legality
	// lookups hit. Cold-serving this trace yields a near-zero early hit
	// rate; warm-shipped it must be solidly above half.
	st := cacheB.Stats()
	if st.Hits == 0 {
		t.Fatal("daemon B cache saw no hits")
	}
	if rate := st.HitRate(); rate < 0.5 {
		t.Errorf("daemon B hit rate %.3f, want >= 0.5 (warm from first request); stats %+v", rate, st)
	}
}

func TestCacheImportRejectsGarbage(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, _ := importCache(t, ts.URL, []byte("definitely not a snapshot"))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("garbage import: status %d", status)
	}
	if st := s.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("garbage import planted %d entries", st.Entries)
	}

	// Truncated real snapshot: same rejection, same untouched cache.
	req := api.GenerateRequest{SearchParams: fastParams, Queries: figure1}
	if st, b := post(t, ts.URL+"/v1/generate", req); st != http.StatusOK {
		t.Fatalf("warm generate: status %d: %s", st, b)
	}
	snap := exportCache(t, ts.URL)
	fresh, tsFresh := newTestServer(t, Config{})
	if status, _ := importCache(t, tsFresh.URL, snap[:len(snap)/2]); status != http.StatusUnprocessableEntity {
		t.Fatalf("truncated import: status %d", status)
	}
	if st := fresh.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("truncated import planted %d entries", st.Entries)
	}
}

func TestCacheImportTooLarge(t *testing.T) {
	// A real, well-formed snapshot that exceeds the receiver's byte limit:
	// the decoder runs into the cap mid-parse and must answer 413, not 422.
	_, warm := newTestServer(t, Config{})
	req := api.GenerateRequest{SearchParams: fastParams, Queries: figure1}
	if status, body := post(t, warm.URL+"/v1/generate", req); status != http.StatusOK {
		t.Fatalf("warm generate: status %d: %s", status, body)
	}
	snap := exportCache(t, warm.URL)

	small, ts := newTestServer(t, Config{MaxSnapshotBytes: 64})
	if int64(len(snap)) <= 64 {
		t.Fatalf("snapshot unexpectedly small: %d bytes", len(snap))
	}
	status, _ := importCache(t, ts.URL, snap)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized import: status %d", status)
	}
	if st := small.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("oversized import planted %d entries", st.Entries)
	}
}

func TestCacheSnapshotDrainSemantics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := api.GenerateRequest{SearchParams: fastParams, Queries: figure1}
	if status, body := post(t, ts.URL+"/v1/generate", req); status != http.StatusOK {
		t.Fatalf("generate: status %d: %s", status, body)
	}
	snap := exportCache(t, ts.URL)

	s.Drain()
	// Export survives drain: capturing warmth on the way down is the point.
	if got := exportCache(t, ts.URL); !bytes.Equal(got, snap) {
		t.Error("export while draining returned different bytes than before drain")
	}
	// Import is refused: a daemon shutting down takes no new warmth.
	if status, _ := importCache(t, ts.URL, snap); status != http.StatusServiceUnavailable {
		t.Fatalf("import while draining: status %d", status)
	}
}

func TestCacheExportConcurrencyConflict(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Hold the transfer slot directly; a concurrent export must 409, not queue.
	s.snapSem <- struct{}{}
	defer func() { <-s.snapSem }()
	status, body := get(t, ts.URL+"/v1/cache/export")
	if status != http.StatusConflict {
		t.Fatalf("concurrent export: status %d: %s", status, body)
	}
	if status, _ := importCache(t, ts.URL, []byte("x")); status != http.StatusConflict {
		t.Fatalf("concurrent import: status %d", status)
	}
}
