package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	mctsui "repro"
	"repro/internal/api"
	"repro/internal/api/client"
	"repro/internal/sqlparser"
)

// figure1 is the paper's three-query log — small enough that every search
// in these tests takes milliseconds.
var figure1 = []string{
	"SELECT Sales FROM sales WHERE cty = USA",
	"SELECT Costs FROM sales WHERE cty = EUR",
	"SELECT Costs FROM sales",
}

// fastParams keep searches deterministic and fast.
var fastParams = api.SearchParams{Iterations: 8, Seed: 7}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// testClient returns the typed client for a test server with retries off —
// in a test, a refused connection is a bug to surface, not to paper over.
func testClient(base string) *client.Client {
	cl := client.New(base)
	cl.Retries = -1
	return cl
}

// clientFor splits a full test URL into the typed client for its server and
// the request path — the bridge that lets the (url, body) helper call sites
// below ride the shared client instead of hand-rolled net/http.
func clientFor(t *testing.T, rawurl string) (*client.Client, string) {
	t.Helper()
	u, err := url.Parse(rawurl)
	if err != nil {
		t.Errorf("parse %s: %v", rawurl, err)
		return nil, ""
	}
	path := u.Path
	if u.RawQuery != "" {
		path += "?" + u.RawQuery
	}
	return testClient(u.Scheme + "://" + u.Host), path
}

// isStatus reports whether err is a *client.StatusError with the given code.
func isStatus(err error, code int) bool {
	var se *client.StatusError
	return errors.As(err, &se) && se.Code == code
}

// post sends a JSON body and returns (status, response bytes). Transport
// errors report via t.Errorf and return status 0 — never FailNow, since
// several tests call these helpers from spawned goroutines (FailNow must
// only run on the test goroutine, and a Goexit mid-helper would strand the
// channel sends those tests wait on).
func post(t *testing.T, rawurl string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Errorf("marshal request: %v", err)
		return 0, nil
	}
	cl, path := clientFor(t, rawurl)
	if cl == nil {
		return 0, nil
	}
	status, out, err := cl.PostJSON(context.Background(), path, data)
	if err != nil {
		t.Errorf("POST %s: %v", rawurl, err)
		return 0, nil
	}
	return status, out
}

func get(t *testing.T, rawurl string) (int, []byte) {
	t.Helper()
	cl, path := clientFor(t, rawurl)
	if cl == nil {
		return 0, nil
	}
	status, out, err := cl.Get(context.Background(), path)
	if err != nil {
		t.Errorf("GET %s: %v", rawurl, err)
		return 0, nil
	}
	return status, out
}

// compactJSON strips insignificant whitespace: the codec emits indented
// JSON, but embedding it as json.RawMessage in a response compacts it.
func compactJSON(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatalf("bad JSON %s: %v", data, err)
	}
	return buf.Bytes()
}

func decodeGenerate(t *testing.T, data []byte) api.GenerateResponse {
	t.Helper()
	var resp api.GenerateResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad generate response %s: %v", data, err)
	}
	return resp
}

// offline runs the same generation the server performs for the given
// params, with a fresh private cache — the reference the daemon's responses
// must match byte for byte.
func offline(t *testing.T, queries []string, p api.SearchParams, warm *mctsui.Interface) *mctsui.Interface {
	t.Helper()
	opts := []mctsui.Option{}
	if p.Iterations > 0 {
		opts = append(opts, mctsui.WithIterations(p.Iterations))
	}
	if p.Seed != 0 {
		opts = append(opts, mctsui.WithSeed(p.Seed))
	}
	if p.Workers != 0 {
		opts = append(opts, mctsui.WithWorkers(p.Workers))
	}
	if p.Strategy != "" {
		strat, err := mctsui.StrategyByName(p.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, mctsui.WithStrategy(strat))
	}
	if warm != nil {
		opts = append(opts, mctsui.WithWarmStart(warm))
	}
	iface, err := mctsui.New(opts...).Generate(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	return iface
}

func TestGenerateDeterministicAndMatchesOffline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.GenerateRequest{SearchParams: fastParams, Queries: figure1}

	status, body1 := post(t, ts.URL+"/v1/generate", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body1)
	}
	status, body2 := post(t, ts.URL+"/v1/generate", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("identical requests returned different bodies")
	}

	resp := decodeGenerate(t, body1)
	if !resp.Valid {
		t.Fatalf("invalid interface: %s", body1)
	}
	ref := offline(t, figure1, fastParams, nil)
	want, err := ref.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compactJSON(t, resp.Interface), compactJSON(t, want)) {
		t.Errorf("served interface differs from offline Generate:\n got %s\nwant %s", resp.Interface, want)
	}
	if resp.Cost != ref.Cost() {
		t.Errorf("served cost %v, offline %v", resp.Cost, ref.Cost())
	}
}

// TestGenerateTreeWorkers: a tree-parallel request is served and its
// goroutine fan-out is capped by admission control — workers × tree_workers
// never exceeds MaxWorkers, so one request cannot grab more CPU than a plain
// root-parallel request could.
func TestGenerateTreeWorkers(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWorkers: 4})

	p := fastParams
	p.TreeWorkers = 8
	status, body := post(t, ts.URL+"/v1/generate", api.GenerateRequest{SearchParams: p, Queries: figure1})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	resp := decodeGenerate(t, body)
	if !resp.Valid {
		t.Fatalf("invalid interface: %s", body)
	}
	if resp.Search.TreeWorkers != 4 {
		t.Errorf("tree_workers = %d, want the MaxWorkers cap of 4", resp.Search.TreeWorkers)
	}

	// Root and tree workers share one budget: 2 root workers leave room for
	// only 2 tree workers each under MaxWorkers=4.
	p.Workers, p.TreeWorkers = 2, 8
	status, body = post(t, ts.URL+"/v1/generate", api.GenerateRequest{SearchParams: p, Queries: figure1})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	resp = decodeGenerate(t, body)
	if resp.Search.Workers != 2 || resp.Search.TreeWorkers != 2 {
		t.Errorf("workers=%d tree_workers=%d, want 2 and 2", resp.Search.Workers, resp.Search.TreeWorkers)
	}
}

func TestGenerateRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxQueries: 2})
	for name, req := range map[string]api.GenerateRequest{
		"empty log":     {SearchParams: fastParams},
		"oversized log": {SearchParams: fastParams, Queries: []string{"select a from t", "select b from t", "select c from t"}},
		"bad sql":       {SearchParams: fastParams, Queries: []string{"not sql at all ((("}},
		"bad strategy":  {SearchParams: api.SearchParams{Strategy: "warp"}, Queries: figure1},
		"bad budget":    {SearchParams: api.SearchParams{Iterations: -4}, Queries: figure1},
		"bad screen":    {SearchParams: api.SearchParams{Screen: &api.Size{W: -1, H: 5}}, Queries: figure1},
		"bad workers":   {SearchParams: api.SearchParams{TreeWorkers: -2}, Queries: figure1},
	} {
		if status, body := post(t, ts.URL+"/v1/generate", req); status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, status, body)
		}
	}
	if status, _ := post(t, ts.URL+"/v1/sessions/nope/interact", api.InteractRequest{Op: "get"}); status != http.StatusNotFound {
		t.Errorf("interact on unknown session: status %d, want 404", status)
	}
	if status, _ := get(t, ts.URL+"/v1/sessions/nope/export"); status != http.StatusNotFound {
		t.Errorf("export of unknown session: status %d, want 404", status)
	}

	// A failed session create must leave no resident state: export still
	// 404s (not 409) and no MaxSessions slot is consumed.
	if status, _ := post(t, ts.URL+"/v1/sessions/phantom/queries",
		api.SessionQueriesRequest{SearchParams: fastParams, Queries: []string{"not sql ((("}}); status != http.StatusBadRequest {
		t.Errorf("bad create: status %d, want 400", status)
	}
	if status, _ := get(t, ts.URL+"/v1/sessions/phantom/export"); status != http.StatusNotFound {
		t.Errorf("failed create left a session behind: export status %d, want 404", status)
	}
}

// TestSessionRoundTrip is the integration satellite: generate → append
// queries (warm-started) → interact → export, asserting the exported
// interface equals an offline Generate+WarmStart replay over the same query
// log and that persist→load (export→import) preserves widget semantics.
func TestSessionRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL + "/v1/sessions/alpha"

	// 1. Create the session with the first two queries.
	status, body := post(t, base+"/queries", api.SessionQueriesRequest{SearchParams: fastParams, Queries: figure1[:2]})
	if status != http.StatusOK {
		t.Fatalf("create: status %d: %s", status, body)
	}
	first := decodeGenerate(t, body)
	if first.Session != "alpha" || first.QueryCount != 2 {
		t.Fatalf("create: session %q count %d", first.Session, first.QueryCount)
	}
	if !first.Created {
		t.Error("first append did not report created")
	}

	// 2. Append the third query: regeneration warm-starts from the previous
	// interface via the shared cache + core WarmStart hook.
	status, body = post(t, base+"/queries", api.SessionQueriesRequest{SearchParams: fastParams, Queries: figure1[2:]})
	if status != http.StatusOK {
		t.Fatalf("append: status %d: %s", status, body)
	}
	second := decodeGenerate(t, body)
	if second.QueryCount != 3 {
		t.Fatalf("append: query count %d, want 3", second.QueryCount)
	}
	if second.Created {
		t.Error("append to a live session reported created (state was silently reset)")
	}

	// Offline replay over the same query log must match byte for byte.
	prev := offline(t, figure1[:2], fastParams, nil)
	ref := offline(t, figure1, fastParams, prev)
	want, err := ref.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compactJSON(t, second.Interface), compactJSON(t, want)) {
		t.Errorf("incremental interface differs from offline warm-started replay:\n got %s\nwant %s",
			second.Interface, want)
	}
	if second.Search.WarmStarted != ref.Stats().WarmStarted {
		t.Errorf("warm_started %v, offline %v", second.Search.WarmStarted, ref.Stats().WarmStarted)
	}

	// 3. Interact: load a log query, read the current SQL back.
	wantSQL := sqlparser.Render(sqlparser.MustParse(figure1[1]))
	status, body = post(t, base+"/interact", api.InteractRequest{Op: "load_query", Query: figure1[1]})
	if status != http.StatusOK {
		t.Fatalf("interact: status %d: %s", status, body)
	}
	var inter api.InteractResponse
	if err := json.Unmarshal(body, &inter); err != nil {
		t.Fatal(err)
	}
	if inter.SQL != wantSQL {
		t.Errorf("interact SQL %q, want %q", inter.SQL, wantSQL)
	}
	if len(inter.Widgets) == 0 || len(inter.Widgets) != ref.NumWidgets() {
		t.Errorf("widgets %d, want %d", len(inter.Widgets), ref.NumWidgets())
	}

	// 4. Export: JSON equals the persisted form from step 2; HTML renders.
	status, exported := get(t, base+"/export?format=json")
	if status != http.StatusOK {
		t.Fatalf("export: status %d: %s", status, exported)
	}
	if !bytes.Equal(compactJSON(t, exported), compactJSON(t, second.Interface)) {
		t.Error("export differs from the interface served at generation time")
	}
	status, page := get(t, base+"/export?format=html")
	if status != http.StatusOK || !strings.Contains(string(page), "<html") {
		t.Errorf("html export: status %d, len %d", status, len(page))
	}

	// 5. Persist→load: import the export as a new session; the same
	// interaction must produce the same SQL (widget semantics preserved).
	// This leg runs through the typed client's session methods end to end.
	cl := testClient(ts.URL)
	imp, err := cl.ImportSession(context.Background(), "beta", exported, nil)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if imp.QueryCount != 3 {
		t.Errorf("import query count %d, want 3", imp.QueryCount)
	}
	interB2, err := cl.Interact(context.Background(), "beta", &api.InteractRequest{Op: api.OpLoadQuery, Query: figure1[1]})
	if err != nil {
		t.Fatalf("interact on imported session: %v", err)
	}
	interB := *interB2
	if interB.SQL != inter.SQL {
		t.Errorf("imported session SQL %q, original %q", interB.SQL, inter.SQL)
	}
	if len(interB.Widgets) != len(inter.Widgets) {
		t.Errorf("imported session has %d widgets, original %d", len(interB.Widgets), len(inter.Widgets))
	}
	for i := range interB.Widgets {
		if interB.Widgets[i].Value != inter.Widgets[i].Value || interB.Widgets[i].Type != inter.Widgets[i].Type {
			t.Errorf("widget %d diverged after persist→load: %+v vs %+v", i, interB.Widgets[i], inter.Widgets[i])
		}
	}

	// 6. Malformed import errors (the fuzz wall's contract), never panics.
	if _, err := cl.ImportSession(context.Background(), "gamma",
		[]byte(`{"version":1,"difftree":{"kind":"WAT"}}`), nil); !isStatus(err, http.StatusUnprocessableEntity) {
		t.Errorf("malformed import: %v, want 422", err)
	}
}

func TestInteractOps(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL + "/v1/sessions/ops"
	if status, body := post(t, base+"/queries", api.SessionQueriesRequest{SearchParams: fastParams, Queries: figure1}); status != http.StatusOK {
		t.Fatalf("create: %d %s", status, body)
	}
	status, body := post(t, base+"/interact", api.InteractRequest{Op: "get"})
	if status != http.StatusOK {
		t.Fatalf("get: %d %s", status, body)
	}
	var snap api.InteractResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Widgets) == 0 {
		t.Fatal("no widgets")
	}
	// Flip every widget through each legal value; the SQL endpoint must
	// stay well-formed (parse errors would 422).
	for i, wd := range snap.Widgets {
		values := len(wd.Options)
		if values == 0 {
			values = 2 // toggles/adders: exercise 0 and 1
		}
		for v := 0; v < values; v++ {
			status, body = post(t, base+"/interact", api.InteractRequest{Op: "set", Widget: i, Value: v})
			if status != http.StatusOK {
				t.Fatalf("set widget %d=%d: %d %s", i, v, status, body)
			}
		}
	}
	if status, body = post(t, base+"/interact", api.InteractRequest{Op: "set", Widget: 99, Value: 0}); status != http.StatusUnprocessableEntity {
		t.Errorf("out-of-range widget: %d %s", status, body)
	}
	if status, body = post(t, base+"/interact", api.InteractRequest{Op: "warp"}); status != http.StatusBadRequest {
		t.Errorf("unknown op: %d %s", status, body)
	}
}

func TestAdmissionControl(t *testing.T) {
	// QueueWait is generous so the queued request cannot time out (freeing
	// its queue position) before the overflow probe runs; Drain below ends
	// the wait long before the timer would.
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		QueueWait:     5 * time.Second,
	})
	// Occupy the only slot with a long-budget search.
	slow := api.GenerateRequest{SearchParams: api.SearchParams{BudgetMS: 3000, Seed: 1}, Queries: figure1}
	done := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL+"/v1/generate", slow)
		done <- status
	}()
	waitFor(t, func() bool { return len(s.sem) == 1 })

	// Second request fills the queue and times out waiting: 503. Launch it
	// before the overflow probes so the queue is actually full.
	queued := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL+"/v1/generate", slow)
		queued <- status
	}()
	waitFor(t, func() bool { return s.queued.Load() >= 2 })

	// Overflow beyond MaxConcurrent+QueueDepth is rejected immediately: 429.
	status, body := post(t, ts.URL+"/v1/generate", slow)
	if status != http.StatusTooManyRequests {
		t.Errorf("overflow status %d (%s), want 429", status, body)
	}

	// Drain resolves both outstanding requests: the queued one is refused
	// (503) without sitting out its wait, and the slot holder's anytime
	// search is cut short but still answers 200 with best-so-far.
	s.Drain()
	if got := <-queued; got != http.StatusServiceUnavailable {
		t.Errorf("queued status %d, want 503", got)
	}
	if got := <-done; got != http.StatusOK {
		t.Errorf("admitted request status %d, want 200", got)
	}
	if s.rejected.Load() < 2 {
		t.Errorf("rejected counter %d, want >= 2", s.rejected.Load())
	}
}

func TestDrainReturnsBestSoFar(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := api.GenerateRequest{SearchParams: api.SearchParams{BudgetMS: 10000, Seed: 1}, Queries: figure1}
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		status, body := post(t, ts.URL+"/v1/generate", req)
		done <- result{status, body}
	}()
	waitFor(t, func() bool { return len(s.sem) == 1 })

	start := time.Now()
	s.Drain()
	res := <-done
	if res.status != http.StatusOK {
		t.Fatalf("drained request status %d: %s", res.status, res.body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain took %v; the anytime search should end promptly", elapsed)
	}
	resp := decodeGenerate(t, res.body)
	if !resp.Search.Interrupted {
		t.Error("drained response not marked interrupted")
	}
	if !resp.Valid {
		t.Error("drained response carries no best-so-far interface")
	}

	// Post-drain: new work refused. Liveness and readiness split — the
	// process is still alive (/healthz 200, so an orchestrator won't kill a
	// draining replica mid-handoff) but must take no new traffic (/readyz
	// 503, so a fleet router routes around it).
	if status, _ := post(t, ts.URL+"/v1/generate", req); status != http.StatusServiceUnavailable {
		t.Errorf("post-drain generate status %d, want 503", status)
	}
	status, hbody := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Errorf("post-drain healthz status %d, want 200 (liveness survives drain)", status)
	}
	var health api.HealthResponse
	if err := json.Unmarshal(hbody, &health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining || health.Ready {
		t.Errorf("post-drain healthz body %+v, want draining=true ready=false", health)
	}
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("post-drain readyz status %d, want 503", status)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestSSEStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.GenerateRequest{SearchParams: fastParams, Queries: figure1, Stream: true}
	data, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := parseSSE(t, string(body))
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.name != "result" {
		t.Fatalf("last event %q, want result (events: %d)", last.name, len(events))
	}
	progress := 0
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Errorf("unexpected event %q before result", ev.name)
		}
		var p api.ProgressEvent
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("bad progress data %q: %v", ev.data, err)
		}
		progress++
	}
	if progress == 0 {
		t.Error("no progress events before the result")
	}

	// The streamed result equals the plain JSON response for the same
	// request (determinism is transport-independent).
	var streamed api.GenerateResponse
	if err := json.Unmarshal([]byte(last.data), &streamed); err != nil {
		t.Fatal(err)
	}
	plainReq := req
	plainReq.Stream = false
	status, plainBody := post(t, ts.URL+"/v1/generate", plainReq)
	if status != http.StatusOK {
		t.Fatalf("plain run: %d", status)
	}
	plain := decodeGenerate(t, plainBody)
	if !bytes.Equal(streamed.Interface, plain.Interface) || streamed.Cost != plain.Cost {
		t.Error("streamed result differs from plain JSON result")
	}
}

type sseEvent struct{ name, data string }

func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, frame := range strings.Split(body, "\n\n") {
		frame = strings.TrimSpace(frame)
		if frame == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(frame, "\n") {
			if name, ok := strings.CutPrefix(line, "event: "); ok {
				ev.name = name
			}
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				ev.data = data
			}
		}
		if ev.name == "" {
			t.Fatalf("frame without event name: %q", frame)
		}
		out = append(out, ev)
	}
	return out
}

func TestSessionLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 2})
	for _, id := range []string{"a", "b", "c"} {
		url := fmt.Sprintf("%s/v1/sessions/%s/queries", ts.URL, id)
		if status, body := post(t, url, api.SessionQueriesRequest{SearchParams: fastParams, Queries: figure1}); status != http.StatusOK {
			t.Fatalf("session %s: %d %s", id, status, body)
		}
	}
	s.mu.Lock()
	n := len(s.sessions)
	_, aAlive := s.sessions["a"]
	s.mu.Unlock()
	if n != 2 {
		t.Errorf("resident sessions %d, want 2", n)
	}
	if aAlive {
		t.Error("LRU session survived eviction")
	}
	if status, _ := get(t, ts.URL+"/v1/sessions/a/export"); status != http.StatusNotFound {
		t.Errorf("evicted session still exported: %d", status)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cl := testClient(ts.URL)
	ctx := context.Background()
	if _, err := cl.Generate(ctx, &api.GenerateRequest{SearchParams: fastParams, Queries: figure1}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Cache.Entries == 0 || st.Cache.Capacity == 0 {
		t.Errorf("cache never populated: %+v", st.Cache)
	}
	if st.Requests != 1 || st.Draining {
		t.Errorf("stats = %+v", st)
	}
	if ok, err := cl.Healthy(ctx); err != nil || !ok {
		t.Errorf("healthy: %v %v", ok, err)
	}
	if ok, err := cl.Ready(ctx); err != nil || !ok {
		t.Errorf("ready: %v %v", ok, err)
	}
}

// TestReadinessGate pins the liveness/readiness split for warm boots: a
// server started with StartUnready (mctsuid loading a cache snapshot in the
// background) is alive but unready until MarkReady — so a fleet router keeps
// traffic off a still-cold replica without mistaking it for dead — and Ready
// never reports true once draining.
func TestReadinessGate(t *testing.T) {
	s, ts := newTestServer(t, Config{StartUnready: true})
	cl := testClient(ts.URL)
	ctx := context.Background()

	if ok, err := cl.Healthy(ctx); err != nil || !ok {
		t.Errorf("unready server healthz = %v %v, want alive", ok, err)
	}
	if ok, err := cl.Ready(ctx); err != nil || ok {
		t.Errorf("pre-MarkReady readyz = %v %v, want not ready", ok, err)
	}
	// Unready gates only routing, not serving: a request that does arrive
	// (raced in before a router noticed, or sent directly) is still served.
	if _, err := cl.Generate(ctx, &api.GenerateRequest{SearchParams: fastParams, Queries: figure1}); err != nil {
		t.Errorf("generate while unready: %v", err)
	}

	s.MarkReady()
	if ok, err := cl.Ready(ctx); err != nil || !ok {
		t.Errorf("post-MarkReady readyz = %v %v, want ready", ok, err)
	}

	s.Drain()
	if ok, err := cl.Ready(ctx); err != nil || ok {
		t.Errorf("draining readyz = %v %v, want not ready", ok, err)
	}
	if ok, err := cl.Healthy(ctx); err != nil || !ok {
		t.Errorf("draining healthz = %v %v, want alive", ok, err)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestConcurrentSessionsRace drives several sessions concurrently (append +
// interact + export) as the -race exercise for the session/admission
// locking.
func TestConcurrentSessionsRace(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("race-%d", w%3) // overlap sessions across goroutines
			base := fmt.Sprintf("%s/v1/sessions/%s", ts.URL, id)
			for i := 0; i < 3; i++ {
				q := figure1[(w+i)%len(figure1)]
				status, body := post(t, base+"/queries", api.SessionQueriesRequest{SearchParams: fastParams, Queries: []string{q}})
				if status != http.StatusOK {
					t.Errorf("append: %d %s", status, body)
					return
				}
				post(t, base+"/interact", api.InteractRequest{Op: "get"})
				get(t, base+"/export?format=json")
			}
		}(w)
	}
	wg.Wait()
}
