package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	mctsui "repro"
)

// ProgressEvent is one SSE "progress" frame: a best-so-far snapshot of the
// running search (the same data cmd/mctsui -progress prints). BestCost is
// -1 until a valid interface has been seen.
type ProgressEvent struct {
	Strategy   string  `json:"strategy"`
	Worker     int     `json:"worker"`
	Iterations int     `json:"iterations"`
	States     int     `json:"states"`
	Evals      int     `json:"evals"`
	BestCost   float64 `json:"best_cost"`
	ElapsedMS  int64   `json:"elapsed_ms"`
}

// streamSearch runs work on its own goroutine and writes its progress
// snapshots as Server-Sent Events, ending with one "result" or "error"
// event. Snapshots arrive on the search goroutines (serialized by the
// engine); a slow client drops snapshots rather than stalling the search.
func (s *Server) streamSearch(w http.ResponseWriter, ctx context.Context,
	work func(ctx context.Context, progress func(mctsui.Progress)) (*GenerateResponse, int, error)) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusNotAcceptable, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	snapshots := make(chan ProgressEvent, 16)
	type outcome struct {
		resp *GenerateResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, _, err := work(ctx, func(p mctsui.Progress) {
			ev := ProgressEvent{
				Strategy:   p.Strategy,
				Worker:     p.Worker,
				Iterations: p.Iterations,
				States:     p.States,
				Evals:      p.Evals,
				BestCost:   jsonCost(p.BestCost),
				ElapsedMS:  p.Elapsed.Milliseconds(),
			}
			select {
			case snapshots <- ev:
			default: // client is slow: drop the snapshot, never the search
			}
		})
		done <- outcome{resp, err}
	}()

	emit := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	ctxDone := ctx.Done()
	for {
		select {
		case ev := <-snapshots:
			emit("progress", ev)
		case out := <-done:
			// Drain snapshots that beat the result onto the channel so the
			// event order stays progress* then result.
			for {
				select {
				case ev := <-snapshots:
					emit("progress", ev)
					continue
				default:
				}
				break
			}
			if out.err != nil {
				emit("error", errorJSON{Error: out.err.Error()})
			} else {
				emit("result", out.resp)
			}
			return
		case <-ctxDone:
			// Client went away or the daemon is draining; the work goroutine
			// unblocks promptly (the engine is anytime) and its best-so-far
			// result is emitted above. Nil the channel so this select arm
			// fires once instead of spinning.
			ctxDone = nil
		}
	}
}
