package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	mctsui "repro"
	"repro/internal/api"
)

// sseWriteTimeout bounds every SSE frame write. A client that disconnects
// cleanly fails the next write immediately, but one that silently vanishes
// (network partition) or stops reading fills the socket buffers and would
// otherwise block the pump — and with it the search slot — forever. The
// deadline turns that stall into a write error, which cancels the search.
const sseWriteTimeout = 15 * time.Second

// sseWriter serializes events onto the wire with a per-write deadline.
// failed latches the first write error: once the client is unreachable,
// later frames are skipped instead of re-attempted (each attempt against a
// dead peer would otherwise burn its own deadline).
type sseWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	ctrl    *http.ResponseController
	failed  bool
}

// emit writes one event frame; false means the client is gone (this write
// or an earlier one failed) and the caller should cancel the search.
func (sw *sseWriter) emit(event string, v any) bool {
	if sw.failed {
		return false
	}
	data, err := json.Marshal(v)
	if err != nil {
		return true // nothing sensible to send; keep the stream alive
	}
	// SetWriteDeadline errors (unsupported ResponseWriter) are ignored: the
	// write then simply has no deadline, which is the pre-hardening behavior.
	_ = sw.ctrl.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
	if _, err := fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		sw.failed = true
		return false
	}
	sw.flusher.Flush()
	return true
}

// streamSearch runs work on its own goroutine and writes its progress
// snapshots as Server-Sent Events, ending with one "result" or "error"
// event. Snapshots arrive on the search goroutines (serialized by the
// engine); a slow client drops snapshots rather than stalling the search.
//
// cancel tears down the search context: it is invoked the moment a frame
// write fails, so a client that disconnects or stalls mid-stream releases
// its search slot as soon as the anytime engine observes the cancellation —
// the pump never returns (and never frees the slot) before the search
// goroutine has finished, keeping the MaxConcurrent accounting exact.
func (s *Server) streamSearch(w http.ResponseWriter, ctx context.Context, cancel context.CancelFunc,
	work func(ctx context.Context, progress func(mctsui.Progress)) (*api.GenerateResponse, int, error)) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusNotAcceptable, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	snapshots := make(chan api.ProgressEvent, 16)
	type outcome struct {
		resp *api.GenerateResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, _, err := work(ctx, func(p mctsui.Progress) {
			ev := api.ProgressEvent{
				Strategy:   p.Strategy,
				Worker:     p.Worker,
				Iterations: p.Iterations,
				States:     p.States,
				Evals:      p.Evals,
				BestCost:   api.JSONCost(p.BestCost),
				ElapsedMS:  p.Elapsed.Milliseconds(),
			}
			select {
			case snapshots <- ev:
			default: // client is slow: drop the snapshot, never the search
			}
		})
		done <- outcome{resp, err}
	}()

	sw := &sseWriter{w: w, flusher: flusher, ctrl: http.NewResponseController(w)}
	ctxDone := ctx.Done()
	for {
		select {
		case ev := <-snapshots:
			if !sw.emit(api.EventProgress, ev) {
				// The client is unreachable; stop the search now instead of
				// letting it run out its budget against a dead stream. The
				// loop keeps draining until the search goroutine reports in.
				cancel()
			}
		case out := <-done:
			// Drain snapshots that beat the result onto the channel so the
			// event order stays progress* then result.
			for {
				select {
				case ev := <-snapshots:
					if !sw.emit(api.EventProgress, ev) {
						cancel()
					}
					continue
				default:
				}
				break
			}
			if out.err != nil {
				sw.emit(api.EventError, api.ErrorBody{Error: out.err.Error()})
			} else {
				sw.emit(api.EventResult, out.resp)
			}
			return
		case <-ctxDone:
			// Client went away or the daemon is draining; the work goroutine
			// unblocks promptly (the engine is anytime) and its best-so-far
			// result is emitted above. Nil the channel so this select arm
			// fires once instead of spinning.
			ctxDone = nil
		}
	}
}
