package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/api"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// TestServeJoinLog: the daemon serves the multi-table grammar end-to-end —
// a join/union/subquery log generates, and load_query interactions round
// trip through the session's widgets to canonical SQL.
func TestServeJoinLog(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	queries := workload.SDSSJoinLogSQL()[:6]
	status, body := post(t, ts.URL+"/v1/generate", api.GenerateRequest{
		SearchParams: api.SearchParams{Iterations: 8, Seed: 7},
		Queries:      queries,
	})
	if status != http.StatusOK {
		t.Fatalf("generate: status %d: %s", status, body)
	}
	resp := decodeGenerate(t, body)
	if !resp.Valid {
		t.Fatalf("join interface invalid: %s", body)
	}

	// Session flow: create via the sessions endpoint, then load each join
	// query and check the widgets reproduce it canonically.
	status, body = post(t, ts.URL+"/v1/sessions/join/queries", api.SessionQueriesRequest{
		SearchParams: api.SearchParams{Iterations: 8, Seed: 7},
		Queries:      queries,
	})
	if status != http.StatusOK {
		t.Fatalf("session create: status %d: %s", status, body)
	}
	for _, q := range queries {
		status, body = post(t, ts.URL+"/v1/sessions/join/interact", api.InteractRequest{Op: "load_query", Query: q})
		if status != http.StatusOK {
			t.Fatalf("load_query %q: status %d: %s", q, status, body)
		}
		var inter api.InteractResponse
		if err := json.Unmarshal(body, &inter); err != nil {
			t.Fatalf("decode interact: %v", err)
		}
		if want := sqlparser.Render(sqlparser.MustParse(q)); inter.SQL != want {
			t.Errorf("served SQL %q, want %q", inter.SQL, want)
		}
	}
}
