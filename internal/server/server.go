// Package server implements the mctsuid serving subsystem: a long-lived
// HTTP daemon over the mctsui generation engine. It is the layer that makes
// the anytime API, the session semantics, and the evicting transposition
// cache earn their keep under sustained multi-user load:
//
//   - POST /v1/generate              — one-shot anytime generation with
//     per-request time/iteration budgets, strategy/worker selection, and
//     optional Server-Sent-Events progress streaming.
//   - POST /v1/sessions/{id}/queries — incremental refinement: append
//     queries to a stored session and regenerate warm-started from the
//     session's previous interface (core's WarmStart hook) against the
//     daemon-wide shared cache.
//   - POST /v1/sessions/{id}/interact — drive the session's widgets
//     server-side (set values, load a query) and read back the current SQL.
//   - POST /v1/sessions/{id}/import  — load a persisted interface (codec
//     JSON) as a session.
//   - GET  /v1/sessions/{id}/export  — the persisted interface as JSON, or
//     the self-contained interactive HTML page.
//   - GET  /v1/stats                 — cache/admission/replica observability.
//   - GET  /healthz, GET /readyz     — liveness vs readiness: /healthz is
//     200 for as long as the process can serve anything at all (draining
//     included — in-flight requests still complete), while /readyz is 503
//     until warm boot finishes and again once draining starts, so a fleet
//     router stops routing *new* work without declaring the process dead.
//   - POST /v1/drain                 — begin graceful drain remotely (the
//     HTTP analogue of SIGTERM), used by the fleet router's planned
//     warm-handoff removal.
//
// Every request and response body is defined in internal/api — the single
// source of truth for the v1 wire contract shared with the router, the
// typed client, and the load harness.
//
// All search endpoints pass through admission control: a fixed number of
// concurrent searches, a bounded wait queue in front of them (overflow is
// rejected immediately with 429, queue-wait timeouts with 503), and a
// graceful drain that cancels in-flight search contexts so every admitted
// request still returns its best-so-far interface — the HTTP analogue of
// cmd/mctsui's SIGINT behavior.
//
// Responses are deterministic: for a fixed request (queries, seed, budget
// in iterations, strategy, workers) the response body is byte-identical
// across processes and across cache configurations — eviction and sharing
// can change only how fast an answer is computed, never the answer. The
// integration soak test pins that property. The one opt-out is
// tree_workers > 1 (tree-parallel MCTS): those requests explicitly trade
// reproducibility for iterations/sec, and their responses vary with worker
// interleaving.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	mctsui "repro"
	"repro/internal/api"
)

// Config tunes the daemon; zero values take the defaults below.
type Config struct {
	// ReplicaID is the daemon's fleet identity: it is reported in the
	// /v1/stats replica section and stamped on every response as an
	// X-Replica header, so a router (or a curious client) can see which
	// fleet member answered. Empty is fine for single-node deployments.
	ReplicaID string
	// StartUnready makes the daemon report not-ready on /readyz until
	// MarkReady is called. cmd/mctsuid sets it when a warm-boot snapshot
	// load is pending, so a fleet router never routes to a replica that is
	// still cold. All endpoints serve regardless — readiness is advisory
	// routing state, not an admission gate.
	StartUnready bool
	// CacheEntries bounds the daemon-wide shared transposition cache
	// (mctsui.NewCache; <= 0 means the engine default of ~a million states).
	// The cache evicts per-shard CLOCK victims once full, so any bound is
	// safe for an unbounded workload stream — smaller bounds only lower the
	// hit rate.
	CacheEntries int
	// Cache, when non-nil, is used instead of constructing one from
	// CacheEntries (tests inject pre-sized caches and read their stats).
	Cache *mctsui.Cache
	// MaxConcurrent bounds simultaneously running searches (default
	// GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a search slot (default
	// 4*MaxConcurrent). Requests beyond MaxConcurrent+QueueDepth are
	// rejected immediately with 429.
	QueueDepth int
	// QueueWait bounds how long an admitted request waits for a slot before
	// a 503 (default 10s).
	QueueWait time.Duration
	// MaxBudget caps per-request wall-clock search budgets (default 1m,
	// the paper's per-interface budget).
	MaxBudget time.Duration
	// DefaultBudget applies when a request sets neither a budget nor an
	// iteration count (default 0: the engine's default iteration budget).
	DefaultBudget time.Duration
	// MaxIterations caps per-request iteration budgets (default 100000).
	MaxIterations int
	// MaxWorkers caps per-request root-parallel workers (default
	// GOMAXPROCS).
	MaxWorkers int
	// MaxSessions bounds resident sessions; creating one beyond the bound
	// evicts the least-recently-used session (default 1024).
	MaxSessions int
	// MaxQueries bounds the query log length of a single request/session
	// (default 500).
	MaxQueries int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxSnapshotBytes bounds /v1/cache/import bodies (default 256 MiB) —
	// cache snapshots are far larger than ordinary request bodies, so they
	// get their own limit instead of MaxBodyBytes.
	MaxSnapshotBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = time.Minute
	}
	if c.DefaultBudget > c.MaxBudget {
		c.DefaultBudget = c.MaxBudget // the cap binds defaulted requests too
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100000
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = 500
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSnapshotBytes <= 0 {
		c.MaxSnapshotBytes = 256 << 20
	}
	return c
}

// Server is the daemon state: the shared evicting cache, the admission
// gate, and the resident sessions. Construct with New, mount Handler, and
// call Drain then Shutdown on termination.
type Server struct {
	cfg   Config
	cache *mctsui.Cache

	sem    chan struct{} // MaxConcurrent search slots
	queued atomic.Int64  // requests holding or waiting for a slot

	// snapSem serializes cache snapshot transfers (one export or import at a
	// time, never holding a search slot): a second concurrent transfer gets
	// 409 instead of queueing behind a potentially large stream.
	snapSem chan struct{}

	baseCtx  context.Context // cancelled by Drain: searches return best-so-far
	drain    context.CancelFunc
	draining atomic.Bool
	// ready is the /readyz verdict's warm-boot half: false from New when
	// Config.StartUnready until MarkReady. Readiness is advisory (routers
	// consult it; admission does not), so a plain atomic with no admission
	// interlock suffices.
	ready atomic.Bool
	// admitMu serializes admission bookkeeping against Drain: admissions
	// hold the read side while checking the draining flag and registering
	// with inflight, Drain flips the flag under the write side — so once
	// Drain returns, no request can register late and Shutdown's
	// inflight.Wait races no Add.
	admitMu  sync.RWMutex
	inflight sync.WaitGroup

	requests atomic.Int64 // searches admitted
	rejected atomic.Int64 // requests refused by admission control

	// Per-outcome admission totals, the counters the load harness
	// (internal/load) turns into 429/503 rates. rejected above stays their
	// aggregate; clientGone is *not* part of it (a vanished client is not an
	// admission-control refusal).
	overflow429   atomic.Int64 // refused immediately: queue full
	queueTimeouts atomic.Int64 // 503: QueueWait expired before a slot freed
	drainRefusals atomic.Int64 // 503: refused because the daemon is draining
	clientGone    atomic.Int64 // client disconnected while waiting for a slot
	queueWaitUS   atomic.Int64 // cumulative microseconds spent waiting for a slot

	mu       sync.Mutex
	sessions map[string]*session
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		cache = mctsui.NewCache(cfg.CacheEntries)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		cache:    cache,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		snapSem:  make(chan struct{}, 1),
		baseCtx:  ctx,
		drain:    cancel,
		sessions: make(map[string]*session),
	}
	s.ready.Store(!cfg.StartUnready)
	return s
}

// Cache exposes the daemon-wide shared transposition cache.
func (s *Server) Cache() *mctsui.Cache { return s.cache }

// MarkReady flips /readyz to ready (idempotent). cmd/mctsuid calls it once
// the warm-boot snapshot load finishes; a Server built without StartUnready
// is ready from construction.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Ready reports the /readyz verdict: warm boot complete and not draining.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("POST /v1/sessions/{id}/queries", s.handleSessionQueries)
	mux.HandleFunc("POST /v1/sessions/{id}/interact", s.handleInteract)
	mux.HandleFunc("POST /v1/sessions/{id}/import", s.handleImport)
	mux.HandleFunc("GET /v1/sessions/{id}/export", s.handleExport)
	mux.HandleFunc("GET /v1/cache/export", s.handleCacheExport)
	mux.HandleFunc("POST /v1/cache/import", s.handleCacheImport)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.cfg.ReplicaID == "" {
		return mux
	}
	id := s.cfg.ReplicaID
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Replica", id)
		mux.ServeHTTP(w, r)
	})
}

// Drain moves the daemon into graceful shutdown: new search requests are
// refused with 503, and every in-flight search context is cancelled so the
// anytime engine returns its best-so-far interface and the response is
// still written. Call before http.Server.Shutdown.
func (s *Server) Drain() {
	s.admitMu.Lock()
	s.draining.Store(true)
	s.admitMu.Unlock()
	s.drain()
}

// Shutdown drains (if not already draining) and waits for in-flight search
// requests to finish writing their responses, up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- Admission control ------------------------------------------------------

var (
	errDraining     = errors.New("server draining")
	errQueueFull    = errors.New("request queue full")
	errQueueTimeout = errors.New("timed out waiting for a search slot")
)

// acquire admits one search: it takes a queue position (rejecting
// immediately when MaxConcurrent+QueueDepth requests are already in the
// system) and then waits up to QueueWait for a search slot. On success the
// request is registered with the shutdown WaitGroup *before* acquire
// returns, so Shutdown can never observe an admitted-but-uncounted
// request; release undoes both.
func (s *Server) acquire(ctx context.Context) error {
	if err := s.admit(); err != nil {
		return err
	}
	start := time.Now()
	defer func() { s.queueWaitUS.Add(time.Since(start).Microseconds()) }()
	wait := time.NewTimer(s.cfg.QueueWait)
	defer wait.Stop()
	select {
	case s.sem <- struct{}{}:
		if s.draining.Load() {
			// The select can pick the slot arm even with baseCtx already
			// done; back out so no search starts after Drain.
			<-s.sem
			s.unadmit()
			s.rejected.Add(1)
			s.drainRefusals.Add(1)
			return errDraining
		}
		s.requests.Add(1)
		return nil
	case <-ctx.Done():
		// Client went away while queued: not an admission-control refusal,
		// so the rejected counter is not bumped.
		s.unadmit()
		s.clientGone.Add(1)
		return ctx.Err()
	case <-s.baseCtx.Done():
		s.unadmit()
		s.rejected.Add(1)
		s.drainRefusals.Add(1)
		return errDraining
	case <-wait.C:
		s.unadmit()
		s.rejected.Add(1)
		s.queueTimeouts.Add(1)
		return errQueueTimeout
	}
}

// admit performs the admission bookkeeping under the read side of admitMu
// (see the field comment for the Drain interlock).
func (s *Server) admit() error {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		s.rejected.Add(1)
		s.drainRefusals.Add(1)
		return errDraining
	}
	if s.queued.Add(1) > int64(s.cfg.MaxConcurrent+s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		s.overflow429.Add(1)
		return errQueueFull
	}
	s.inflight.Add(1)
	return nil
}

func (s *Server) unadmit() {
	s.queued.Add(-1)
	s.inflight.Done()
}

func (s *Server) release() {
	<-s.sem
	s.queued.Add(-1)
	s.inflight.Done()
}

// admissionStatus maps an admission error to its HTTP status.
func admissionStatus(err error) int {
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, errQueueTimeout), errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusServiceUnavailable
	}
}

// --- Handlers ---------------------------------------------------------------

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req api.GenerateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty query log"))
		return
	}
	if len(req.Queries) > s.cfg.MaxQueries {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("query log exceeds %d entries", s.cfg.MaxQueries))
		return
	}
	// Parameters resolve before any SSE headers are committed, so a bad
	// strategy/budget/screen is a plain 400 in streaming mode too (only
	// mid-search failures, like unparsable SQL, arrive as in-stream
	// "error" events).
	baseOpts, err := s.options(req.SearchParams)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	stream := req.Stream || acceptsSSE(r)
	s.runSearch(w, r, stream, func(ctx context.Context, progress func(mctsui.Progress)) (*api.GenerateResponse, int, error) {
		iface, err := mctsui.New(searchOpts(baseOpts, nil, nil, progress)...).Generate(ctx, req.Queries)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		resp, err := s.response(iface, "", len(req.Queries))
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		return resp, 0, nil
	})
}

// acceptsSSE reports whether the request opts into Server-Sent Events via
// its Accept header. Clients commonly send media ranges ("text/event-stream,
// */*") or parameters (";q=1"), so this matches the media type anywhere in
// the header rather than requiring exact equality.
func acceptsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// runSearch wraps a search-running endpoint in admission control, the drain
// context, and the plain-JSON vs SSE response split.
func (s *Server) runSearch(w http.ResponseWriter, r *http.Request, stream bool,
	work func(ctx context.Context, progress func(mctsui.Progress)) (*api.GenerateResponse, int, error)) {
	if err := s.acquire(r.Context()); err != nil {
		s.fail(w, admissionStatus(err), err)
		return
	}
	defer s.release()

	// The search context ends with the request — or with Drain, which turns
	// every in-flight search into an anytime best-so-far return.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	defer stopAfter()

	if stream {
		s.streamSearch(w, ctx, cancel, work)
		return
	}
	resp, status, err := work(ctx, nil)
	if err != nil {
		s.fail(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// options resolves SearchParams into engine options against the shared
// cache, clamping budgets to the server's limits. Callers append
// per-request extras (warm start, progress) with searchOpts.
func (s *Server) options(p api.SearchParams) ([]mctsui.Option, error) {
	// The initial-state quality reference never appears in a response, so
	// the daemon skips its per-request extraction pass.
	opts := []mctsui.Option{mctsui.WithCache(s.cache), mctsui.WithoutInitialCost()}
	if p.Strategy != "" {
		strat, err := mctsui.StrategyByName(p.Strategy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, mctsui.WithStrategy(strat))
	}
	if p.Iterations < 0 || p.BudgetMS < 0 {
		return nil, errors.New("negative search budget")
	}
	iters := min(p.Iterations, s.cfg.MaxIterations)
	budget := time.Duration(p.BudgetMS) * time.Millisecond
	if budget > s.cfg.MaxBudget {
		budget = s.cfg.MaxBudget
	}
	if iters == 0 && budget == 0 && s.cfg.DefaultBudget > 0 {
		budget = s.cfg.DefaultBudget
	}
	if iters == 0 && budget == 0 {
		// No budget of either kind: the engine's deterministic iteration
		// default (a time budget alone would leave iterations unbounded
		// and make the default response timing-dependent).
		iters = mctsui.DefaultIterations
	}
	if budget == 0 {
		// MaxBudget is an unconditional wall-clock ceiling: an
		// iteration-budget (or engine-default) request cannot hold a search
		// slot longer than any explicit budget could. The search is
		// anytime, so hitting the ceiling still answers with best-so-far.
		budget = s.cfg.MaxBudget
	}
	if iters > 0 {
		opts = append(opts, mctsui.WithIterations(iters))
	}
	opts = append(opts, mctsui.WithTimeBudget(budget))
	if p.Workers < 0 || p.TreeWorkers < 0 {
		return nil, errors.New("negative worker count")
	}
	workers := 1
	if p.Workers != 0 {
		workers = min(p.Workers, s.cfg.MaxWorkers)
		opts = append(opts, mctsui.WithWorkers(workers))
	}
	if p.TreeWorkers > 1 {
		// Admission control bounds the whole request's goroutine fan-out:
		// root workers × tree workers stays within MaxWorkers, the same
		// budget a plain root-parallel request gets.
		opts = append(opts, mctsui.WithTreeWorkers(min(p.TreeWorkers, max(1, s.cfg.MaxWorkers/workers))))
	}
	if p.Seed != 0 {
		opts = append(opts, mctsui.WithSeed(p.Seed))
	}
	if p.Screen != nil {
		if p.Screen.W <= 0 || p.Screen.H <= 0 {
			return nil, errors.New("screen dimensions must be positive")
		}
		opts = append(opts, mctsui.WithScreen(mctsui.Screen{W: p.Screen.W, H: p.Screen.H}))
	}
	return opts, nil
}

// searchOpts extends resolved base options with the per-search extras,
// without aliasing the base slice's backing array across searches.
func searchOpts(base []mctsui.Option, warm *mctsui.Interface, tree *mctsui.SearchTree, progress func(mctsui.Progress)) []mctsui.Option {
	opts := base[:len(base):len(base)]
	if warm != nil {
		opts = append(opts, mctsui.WithWarmStart(warm))
	}
	if tree != nil {
		opts = append(opts, mctsui.WithSearchTree(tree))
	}
	if progress != nil {
		opts = append(opts, mctsui.WithProgress(progress))
	}
	return opts
}

// response assembles the deterministic response body for an interface.
func (s *Server) response(iface *mctsui.Interface, session string, queryCount int) (*api.GenerateResponse, error) {
	data, err := iface.MarshalJSON()
	if err != nil {
		return nil, err
	}
	m, u := iface.CostBreakdown()
	w, h := iface.Bounds()
	st := iface.Stats()
	return &api.GenerateResponse{
		Session:    session,
		QueryCount: queryCount,
		Cost:       api.JSONCost(iface.Cost()),
		M:          m,
		U:          u,
		Valid:      iface.Valid(),
		Widgets:    iface.NumWidgets(),
		Bounds:     api.Size{W: w, H: h},
		ASCII:      iface.ASCII(),
		Interface:  data,
		Search: api.SearchStats{
			Strategy:    st.Strategy,
			Iterations:  st.Iterations,
			Evals:       st.Evals,
			Workers:     st.Workers,
			TreeWorkers: st.TreeWorkers,
			Interrupted: st.Interrupted,
			WarmStarted: st.WarmStarted,
			ReRooted:    st.ReRooted,
		},
	}, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp api.StatsResponse
	cs := s.cache.Stats()
	resp.Cache.Hits = cs.Hits
	resp.Cache.Misses = cs.Misses
	resp.Cache.Entries = cs.Entries
	resp.Cache.Evictions = cs.Evictions
	resp.Cache.Capacity = cs.Capacity
	resp.Cache.HitRate = cs.HitRate()
	if cs.Capacity > 0 {
		resp.Cache.Occupancy = float64(cs.Entries) / float64(cs.Capacity)
	}
	resp.Admission = api.AdmissionStats{
		Served:          s.requests.Load(),
		Overflow429:     s.overflow429.Load(),
		QueueTimeout503: s.queueTimeouts.Load(),
		Draining503:     s.drainRefusals.Load(),
		ClientGone:      s.clientGone.Load(),
		QueueWaitMS:     float64(s.queueWaitUS.Load()) / 1000,
	}
	s.mu.Lock()
	resp.Sessions = len(s.sessions)
	s.mu.Unlock()
	resp.Replica = api.ReplicaStats{
		ID:       s.cfg.ReplicaID,
		Ready:    s.Ready(),
		Draining: s.draining.Load(),
		Sessions: resp.Sessions,
	}
	resp.Inflight = len(s.sem)
	// s.queued counts every request in the system (waiting + running);
	// report only the waiters.
	resp.Queued = max(0, s.queued.Load()-int64(resp.Inflight))
	resp.Requests = s.requests.Load()
	resp.Rejected = s.rejected.Load()
	resp.Draining = s.draining.Load()
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealth is pure liveness: 200 for as long as the process is able to
// answer anything at all. Draining does not fail it — a draining daemon is
// alive and still completing in-flight work; routability is /readyz's job.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, api.HealthResponse{
		Status:   "ok",
		Draining: s.draining.Load(),
		Ready:    s.Ready(),
	})
}

// handleReady is readiness: 503 while the warm-boot snapshot load is still
// running (StartUnready before MarkReady) and again once draining begins,
// so a fleet router routes new work only to replicas that can accept it.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := api.HealthResponse{Status: "ready", Draining: s.draining.Load(), Ready: s.Ready()}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
		resp.Status = "warming"
		if resp.Draining {
			resp.Status = "draining"
		}
	}
	s.writeJSON(w, status, resp)
}

// handleDrain begins graceful drain over HTTP (idempotent): the fleet
// router's planned-removal hook, equivalent to sending the daemon SIGTERM
// minus the process exit. After it returns, /readyz refuses, new searches
// get 503, in-flight searches return best-so-far, and /v1/cache/export
// still works — that asymmetry is what makes drain + export a warm handoff.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.Drain()
	s.writeJSON(w, http.StatusOK, api.DrainResponse{Draining: true})
}

// --- Helpers ----------------------------------------------------------------

// decode reads a JSON body with the size limit applied; false means the
// response has been written.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	if dec.More() {
		s.fail(w, http.StatusBadRequest, errors.New("bad request body: trailing data after JSON document"))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, api.ErrorBody{Error: err.Error()})
}
