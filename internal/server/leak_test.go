package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	mctsui "repro"
	"repro/internal/api"
)

// TestSSEDisconnectReleasesSlot is the regression test for the
// mid-stream-disconnect leak: a streaming client that goes away while its
// search is running must release its search slot promptly (so a follow-up
// request is admitted) and leave no goroutine behind.
func TestSSEDisconnectReleasesSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1, QueueWait: 30 * time.Second})

	before := runtime.NumGoroutine()

	// Open a streaming generate with a long budget, read until the first
	// progress event proves the search is running, then slam the connection.
	req := api.GenerateRequest{
		SearchParams: api.SearchParams{BudgetMS: 30000, Seed: 1},
		Queries:      figure1,
		Stream:       true,
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	// A private transport so the dead connection is not returned to a shared
	// pool (and Close below really closes the TCP stream).
	tr := &http.Transport{DisableKeepAlives: true}
	client := &http.Client{Transport: tr}
	resp, err := client.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		if strings.HasPrefix(line, "event: progress") {
			break
		}
	}
	waitFor(t, func() bool { return len(s.sem) == 1 })
	resp.Body.Close() // disconnect mid-stream, search still running
	tr.CloseIdleConnections()

	// The slot must come back promptly — far sooner than the 30s budget.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.sem) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("search slot not released within 5s of the disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A follow-up request is admitted and served.
	status, body := post(t, ts.URL+"/v1/generate", api.GenerateRequest{SearchParams: fastParams, Queries: figure1})
	if status != http.StatusOK {
		t.Fatalf("follow-up after disconnect: %d %s", status, body)
	}

	// No goroutine left behind: the handler, the search, and the SSE pump
	// must all have unwound. Allow a little slack for runtime/net pollers.
	waitForGoroutines(t, before+3)
}

// failingWriter is a ResponseWriter whose writes start failing after
// `allow` successful writes — the deterministic stand-in for a client that
// disconnected or stalled mid-stream (with the write deadline, a stalled
// socket surfaces exactly like this: as a write error).
type failingWriter struct {
	header http.Header
	allow  int
	writes int
}

func (f *failingWriter) Header() http.Header { return f.header }
func (f *failingWriter) WriteHeader(int)     {}
func (f *failingWriter) Flush()              {}
func (f *failingWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.allow {
		return 0, fmt.Errorf("connection reset by peer")
	}
	return len(p), nil
}

// TestStreamWriteFailureCancelsSearch pins the hardened SSE pump: the first
// failed frame write must cancel the search context (releasing the slot as
// soon as the anytime engine returns) and the pump must still wait for the
// search goroutine before returning — no goroutine left behind, no slot
// freed while a search is running.
func TestStreamWriteFailureCancelsSearch(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	searchExited := make(chan struct{})
	work := func(ctx context.Context, progress func(mctsui.Progress)) (*api.GenerateResponse, int, error) {
		defer close(searchExited)
		// Emit snapshots until cancelled, like a long-budget search would.
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return &api.GenerateResponse{Valid: true}, 0, nil
			case <-time.After(time.Millisecond):
				progress(mctsui.Progress{Iterations: i})
			}
		}
	}

	w := &failingWriter{header: make(http.Header), allow: 1} // headers flush ok, first frame fails
	pumpDone := make(chan struct{})
	go func() {
		s.streamSearch(w, ctx, cancel, work)
		close(pumpDone)
	}()

	select {
	case <-searchExited:
	case <-time.After(5 * time.Second):
		t.Fatal("search not cancelled within 5s of the write failure")
	}
	select {
	case <-pumpDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stream pump did not return after the search exited")
	}
}

// waitForGoroutines polls until the goroutine count drops to at most want.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), want, buf[:n])
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStatsShape pins the /v1/stats JSON contract the load harness scrapes:
// the cache section (hits/misses/entries/evictions/capacity/hit_rate/
// occupancy), the per-outcome admission section, and the top-level gauges.
func TestStatsShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, body := post(t, ts.URL+"/v1/generate", api.GenerateRequest{SearchParams: fastParams, Queries: figure1}); status != http.StatusOK {
		t.Fatalf("generate: %d %s", status, body)
	}
	status, body := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	sections := map[string][]string{
		"cache":     {"hits", "misses", "entries", "evictions", "capacity", "hit_rate", "occupancy"},
		"admission": {"served", "overflow_429", "queue_timeout_503", "draining_503", "client_gone", "queue_wait_total_ms"},
		"replica":   {"ready", "draining", "sessions"},
	}
	for section, keys := range sections {
		blob, ok := raw[section]
		if !ok {
			t.Fatalf("stats body missing %q section: %s", section, body)
		}
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(blob, &fields); err != nil {
			t.Fatalf("%s section: %v", section, err)
		}
		for _, key := range keys {
			if _, ok := fields[key]; !ok {
				t.Errorf("stats %s section missing %q: %s", section, key, blob)
			}
		}
	}
	for _, key := range []string{"sessions", "inflight", "queued", "requests", "rejected", "draining"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats body missing %q: %s", key, body)
		}
	}

	// The counters carry real values: the generate above was served, its
	// evaluations populated the cache, and nothing waited long enough to be
	// refused.
	var st api.StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Served != 1 {
		t.Errorf("admission.served = %d, want 1", st.Admission.Served)
	}
	if st.Admission.Overflow429 != 0 || st.Admission.QueueTimeout503 != 0 || st.Admission.Draining503 != 0 {
		t.Errorf("unexpected refusals: %+v", st.Admission)
	}
	if st.Cache.Entries == 0 || st.Cache.Occupancy <= 0 {
		t.Errorf("cache never populated: %+v", st.Cache)
	}
	if st.Admission.QueueWaitMS < 0 {
		t.Errorf("negative queue wait: %+v", st.Admission)
	}
}

// TestAdmissionOutcomeCounters drives one of each refusal outcome and
// checks the per-outcome totals line up.
func TestAdmissionOutcomeCounters(t *testing.T) {
	// QueueWait is long enough that the overflow probe reliably lands while
	// the queued request still holds its queue position, yet short enough
	// that its timeout fires well inside the slot holder's 3s budget.
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		QueueWait:     500 * time.Millisecond,
	})
	// Hold the only slot.
	slow := api.GenerateRequest{SearchParams: api.SearchParams{BudgetMS: 3000, Seed: 1}, Queries: figure1}
	done := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL+"/v1/generate", slow)
		done <- status
	}()
	waitFor(t, func() bool { return len(s.sem) == 1 })

	// One queued request that times out (503), then — while the queue
	// position is still held — one overflow (429).
	queued := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL+"/v1/generate", slow)
		queued <- status
	}()
	waitFor(t, func() bool { return s.queued.Load() >= 2 })
	if status, _ := post(t, ts.URL+"/v1/generate", slow); status != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", status)
	}
	if got := <-queued; got != http.StatusServiceUnavailable {
		t.Fatalf("queued status %d, want 503", got)
	}
	s.Drain()
	if got := <-done; got != http.StatusOK {
		t.Fatalf("slot holder status %d, want 200", got)
	}
	// Post-drain refusal.
	if status, _ := post(t, ts.URL+"/v1/generate", slow); status != http.StatusServiceUnavailable {
		t.Fatal("post-drain request not refused")
	}

	status, body := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var st api.StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Served != 1 {
		t.Errorf("served = %d, want 1", st.Admission.Served)
	}
	if st.Admission.Overflow429 != 1 {
		t.Errorf("overflow_429 = %d, want 1", st.Admission.Overflow429)
	}
	if st.Admission.QueueTimeout503 != 1 {
		t.Errorf("queue_timeout_503 = %d, want 1", st.Admission.QueueTimeout503)
	}
	if st.Admission.Draining503 != 1 {
		t.Errorf("draining_503 = %d, want 1", st.Admission.Draining503)
	}
	if st.Admission.QueueWaitMS <= 0 {
		t.Errorf("queue_wait_total_ms = %v, want > 0 (a request waited out its 50ms)", st.Admission.QueueWaitMS)
	}
	if sum := st.Admission.Overflow429 + st.Admission.QueueTimeout503 + st.Admission.Draining503; sum != st.Rejected {
		t.Errorf("outcome refusals sum %d != rejected %d", sum, st.Rejected)
	}
}
