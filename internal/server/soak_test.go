package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mctsui "repro"
	"repro/internal/api"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// soakWorkloads builds distinct synthetic query logs (SDSS-style) so the
// soak's state universe far exceeds the evicting cache's capacity.
func soakWorkloads(n int) [][]string {
	out := make([][]string, n)
	for w := 0; w < n; w++ {
		cfg := workload.DefaultGenConfig()
		cfg.Queries = 4
		cfg.Tables = 2
		cfg.LiteralVars = 2
		cfg.Seed = int64(100 + w)
		log := workload.Generate(cfg)
		qs := make([]string, len(log))
		for i, q := range log {
			qs[i] = sqlparser.Render(q)
		}
		out[w] = qs
	}
	return out
}

// normalizeSession clears the client-chosen session name so responses from
// differently named sessions compare byte-for-byte. Errors report via
// t.Errorf and return nil (callers run on worker goroutines, where FailNow
// is not allowed); a nil return never equals an expected body.
func normalizeSession(t *testing.T, body []byte) []byte {
	t.Helper()
	var resp api.GenerateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Errorf("bad response %s: %v", body, err)
		return nil
	}
	resp.Session = ""
	out, err := json.Marshal(resp)
	if err != nil {
		t.Errorf("re-marshal response: %v", err)
		return nil
	}
	return out
}

// TestSoakEvictionDeterminism is the serving acceptance soak: ~30s of
// concurrent sessions and one-shot generates against a daemon whose shared
// cache is sized to force constant eviction. At steady state the cache must
// sit at capacity with nonzero evictions and hits, and every response must
// be bit-identical to the same request answered by a fresh daemon with an
// unbounded cache — eviction buys memory, never a different answer.
func TestSoakEvictionDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("30s soak")
	}
	const (
		numWorkloads = 6
		stepLen      = 2 // queries appended per session step
		soakFor      = 30 * time.Second
		soakWorkers  = 8
	)
	logs := soakWorkloads(numWorkloads)
	params := api.SearchParams{Iterations: 8, Seed: 7}
	oneShot := api.SearchParams{Iterations: 8, Seed: 7, Workers: 2}

	// Reference daemon: fresh, unbounded cache. Capture the expected body
	// for every request the soak will repeat.
	refSrv, ref := newTestServer(t, Config{})
	type chainStep struct{ body []byte }
	refChains := make([][]chainStep, numWorkloads)
	refGenerate := make([][]byte, numWorkloads)
	for w, qs := range logs {
		status, body := post(t, ref.URL+"/v1/generate", api.GenerateRequest{SearchParams: oneShot, Queries: qs})
		if status != http.StatusOK {
			t.Fatalf("reference generate %d: %d %s", w, status, body)
		}
		refGenerate[w] = body
		base := fmt.Sprintf("%s/v1/sessions/ref-%d", ref.URL, w)
		for step := 0; step*stepLen < len(qs); step++ {
			chunk := qs[step*stepLen : (step+1)*stepLen]
			status, body := post(t, base+"/queries", api.SessionQueriesRequest{SearchParams: params, Queries: chunk})
			if status != http.StatusOK {
				t.Fatalf("reference session %d step %d: %d %s", w, step, status, body)
			}
			refChains[w] = append(refChains[w], chainStep{normalizeSession(t, body)})
		}
	}
	if st := refSrv.Cache().Stats(); st.Evictions != 0 {
		t.Fatalf("reference cache evicted (%d); it must be effectively unbounded for this soak", st.Evictions)
	}
	ref.Close()

	// Soak daemon: the same engine behind a cache ~100x smaller than the
	// state universe, so admission-heavy traffic runs eviction constantly.
	tiny := mctsui.NewCache(256)
	soakSrv := New(Config{Cache: tiny, MaxConcurrent: soakWorkers})
	ts := httptest.NewServer(soakSrv.Handler())
	defer ts.Close()

	var rounds, mismatches atomic.Int64
	deadline := time.Now().Add(soakFor)
	var wg sync.WaitGroup
	for g := 0; g < soakWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; time.Now().Before(deadline); round++ {
				w := (g + round) % numWorkloads
				// One-shot generate: the full response body must be
				// byte-identical to the unbounded-cache reference.
				status, body := post(t, ts.URL+"/v1/generate", api.GenerateRequest{SearchParams: oneShot, Queries: logs[w]})
				if status != http.StatusOK {
					t.Errorf("soak generate: %d %s", status, body)
					mismatches.Add(1)
					return
				}
				if !bytes.Equal(body, refGenerate[w]) {
					t.Errorf("workload %d: evicting-cache response differs from unbounded-cache reference", w)
					mismatches.Add(1)
					return
				}
				// Incremental session chain: warm-started appends must
				// reproduce the reference chain step by step.
				id := fmt.Sprintf("soak-%d-%d", g, round)
				base := fmt.Sprintf("%s/v1/sessions/%s", ts.URL, id)
				for step, want := range refChains[w] {
					chunk := logs[w][step*stepLen : (step+1)*stepLen]
					status, body := post(t, base+"/queries", api.SessionQueriesRequest{SearchParams: params, Queries: chunk})
					if status != http.StatusOK {
						t.Errorf("soak session step %d: %d %s", step, status, body)
						mismatches.Add(1)
						return
					}
					if !bytes.Equal(normalizeSession(t, body), want.body) {
						t.Errorf("workload %d step %d: session response diverged under eviction", w, step)
						mismatches.Add(1)
						return
					}
				}
				rounds.Add(1)
				if st := tiny.Stats(); st.Entries > st.Capacity {
					t.Errorf("occupancy %d exceeded capacity %d mid-soak", st.Entries, st.Capacity)
					mismatches.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if mismatches.Load() != 0 {
		t.Fatalf("%d mismatching responses", mismatches.Load())
	}
	if rounds.Load() < int64(soakWorkers) {
		t.Fatalf("soak completed only %d rounds; expected at least one per worker", rounds.Load())
	}

	// Steady state via the public stats endpoint: occupancy at capacity,
	// eviction and hit counters both nonzero.
	status, body := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var st api.StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Entries != st.Cache.Capacity {
		t.Errorf("steady-state occupancy %d, want capacity %d", st.Cache.Entries, st.Cache.Capacity)
	}
	if st.Cache.Evictions == 0 {
		t.Error("soak recorded no evictions")
	}
	if st.Cache.Hits == 0 {
		t.Error("soak recorded no cache hits")
	}
	t.Logf("soak: %d rounds, cache %d/%d entries, %d evictions, %d hits (%.1f%% hit rate)",
		rounds.Load(), st.Cache.Entries, st.Cache.Capacity, st.Cache.Evictions, st.Cache.Hits,
		100*st.Cache.HitRate)
}
