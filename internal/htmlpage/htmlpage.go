// Package htmlpage renders a generated interface as a self-contained,
// *interactive* HTML page: the widget tree becomes live form controls, the
// difftree is embedded as JSON, and a small JavaScript port of the query
// generator recomputes and displays the current SQL on every interaction —
// the shippable equivalent of the paper's Figure 6 screenshots.
package htmlpage

import (
	"encoding/json"
	"fmt"
	"html"
	"strings"

	"repro/internal/codec"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/widgets"
)

// Render emits the page. diff and ui must belong together (shared choice
// pointers); queries are shown as loadable presets.
func Render(diff *difftree.Node, ui *layout.Node, queries []string, title string) (string, error) {
	treeJSON, err := json.Marshal(codec.EncodeDiffTree(diff))
	if err != nil {
		return nil2("marshal difftree", err)
	}
	presets, err := json.Marshal(queries)
	if err != nil {
		return nil2("marshal presets", err)
	}

	idx, _ := preorder(diff)
	var controls strings.Builder
	if ui != nil {
		renderControls(&controls, ui, idx, 2)
	} else {
		controls.WriteString("  <p>This interface is static (a single query).</p>\n")
	}

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString("<style>\n" + pageCSS + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	b.WriteString("<div class=\"panes\">\n<div class=\"controls\">\n")
	b.WriteString(controls.String())
	b.WriteString("</div>\n<div class=\"output\">\n")
	b.WriteString("  <h2>Current query</h2>\n  <pre id=\"sql\"></pre>\n")
	b.WriteString("  <h2>Log presets</h2>\n  <div id=\"presets\"></div>\n")
	b.WriteString("</div>\n</div>\n")
	fmt.Fprintf(&b, "<script>\nconst DIFFTREE = %s;\nconst PRESETS = %s;\n%s</script>\n", treeJSON, presets, pageJS)
	b.WriteString("</body>\n</html>\n")
	return b.String(), nil
}

func nil2(what string, err error) (string, error) {
	return "", fmt.Errorf("htmlpage: %s: %w", what, err)
}

// preorder returns difftree pre-order indexes (matching the JS walker).
func preorder(root *difftree.Node) (map[*difftree.Node]int, []*difftree.Node) {
	byNode := make(map[*difftree.Node]int)
	var byIndex []*difftree.Node
	difftree.WalkPath(root, func(n *difftree.Node, _ difftree.Path) bool {
		byNode[n] = len(byIndex)
		byIndex = append(byIndex, n)
		return true
	})
	return byNode, byIndex
}

func renderControls(b *strings.Builder, n *layout.Node, idx map[*difftree.Node]int, depth int) {
	pad := strings.Repeat(" ", depth)
	esc := html.EscapeString
	switch n.Type {
	case widgets.VBox, widgets.HBox:
		dir := "column"
		if n.Type == widgets.HBox {
			dir = "row"
		}
		fmt.Fprintf(b, "%s<div class=\"box\" style=\"flex-direction:%s\">\n", pad, dir)
		for _, c := range n.Children {
			renderControls(b, c, idx, depth+1)
		}
		fmt.Fprintf(b, "%s</div>\n", pad)

	case widgets.Adder:
		i := idx[n.Choice]
		fmt.Fprintf(b, "%s<fieldset><legend>%s</legend>\n", pad, esc(n.Title))
		fmt.Fprintf(b, "%s  <label>instances <input type=\"number\" min=\"0\" max=\"8\" value=\"1\" data-choice=\"%d\" data-kind=\"count\"></label>\n", pad, i)
		for _, c := range n.Children {
			renderControls(b, c, idx, depth+1)
		}
		fmt.Fprintf(b, "%s</fieldset>\n", pad)

	case widgets.Tabs:
		i := idx[n.Choice]
		fmt.Fprintf(b, "%s<div class=\"tabs\" data-tabs=\"%d\">\n", pad, i)
		for oi, o := range n.Domain.Options {
			fmt.Fprintf(b, "%s  <label><input type=\"radio\" name=\"c%d\" value=\"%d\" data-choice=\"%d\" data-kind=\"pick\"%s>%s</label>\n",
				pad, i, oi, i, checked(oi == 0), esc(o))
		}
		for _, c := range n.Children {
			renderControls(b, c, idx, depth+1)
		}
		fmt.Fprintf(b, "%s</div>\n", pad)

	case widgets.Dropdown:
		i := idx[n.Choice]
		fmt.Fprintf(b, "%s<label>%s <select data-choice=\"%d\" data-kind=\"pick\">", pad, esc(n.Title), i)
		for oi, o := range n.Domain.Options {
			fmt.Fprintf(b, "<option value=\"%d\">%s</option>", oi, esc(o))
		}
		b.WriteString("</select></label>\n")

	case widgets.Radio, widgets.Buttons:
		i := idx[n.Choice]
		fmt.Fprintf(b, "%s<fieldset class=\"group\"><legend>%s</legend>", pad, esc(n.Title))
		for oi, o := range n.Domain.Options {
			fmt.Fprintf(b, "<label><input type=\"radio\" name=\"c%d\" value=\"%d\" data-choice=\"%d\" data-kind=\"pick\"%s>%s</label>",
				i, oi, i, checked(oi == 0), esc(o))
		}
		b.WriteString("</fieldset>\n")

	case widgets.Slider, widgets.RangeSlider:
		i := idx[n.Choice]
		max := len(n.Domain.Options) - 1
		fmt.Fprintf(b, "%s<label>%s <input type=\"range\" min=\"0\" max=\"%d\" value=\"0\" data-choice=\"%d\" data-kind=\"pick\"> <span data-slider-label=\"%d\">%s</span></label>\n",
			pad, esc(n.Title), max, i, i, esc(first(n.Domain.Options)))

	case widgets.Textbox:
		i := idx[n.Choice]
		fmt.Fprintf(b, "%s<label>%s <input type=\"text\" list=\"dl%d\" data-choice=\"%d\" data-kind=\"text\" value=\"%s\"><datalist id=\"dl%d\">",
			pad, esc(n.Title), i, i, esc(first(n.Domain.Options)), i)
		for _, o := range n.Domain.Options {
			fmt.Fprintf(b, "<option value=\"%s\">", esc(o))
		}
		b.WriteString("</datalist></label>\n")

	case widgets.Toggle, widgets.Checkbox:
		i := idx[n.Choice]
		fmt.Fprintf(b, "%s<label><input type=\"checkbox\" checked data-choice=\"%d\" data-kind=\"toggle\">%s</label>\n",
			pad, i, esc(n.Title))

	case widgets.Label:
		fmt.Fprintf(b, "%s<span>%s</span>\n", pad, esc(n.Title))
	}
}

func checked(b bool) string {
	if b {
		return " checked"
	}
	return ""
}

func first(opts []string) string {
	if len(opts) > 0 {
		return opts[0]
	}
	return ""
}

const pageCSS = `body{font-family:system-ui,sans-serif;margin:24px;background:#fafbfe}
h1{font-size:1.3rem}
.panes{display:flex;gap:24px;align-items:flex-start}
.controls{min-width:320px;display:flex;flex-direction:column;gap:8px;padding:12px;border:1px solid #88c;border-radius:6px;background:#fff}
.box{display:flex;gap:8px;padding:6px;border:1px dashed #bbd}
.output{flex:1}
fieldset{border:1px solid #ccd;border-radius:4px}
fieldset.group label{margin-right:10px}
pre#sql{background:#15203b;color:#cfe3ff;padding:12px;border-radius:6px;min-height:2.2em;white-space:pre-wrap}
#presets button{display:block;margin:4px 0;text-align:left;font-family:monospace}
.tabs{border:1px solid #ccd;padding:6px;border-radius:4px}
`

// pageJS is the embedded generator: a faithful port of the Go session
// generator (difftree -> AST -> SQL) driving the live query display.
const pageJS = `
const SEL = {};            // pre-order index -> selection
const NODES = [];
(function walk(n){ NODES.push(n); (n.children||[]).forEach(walk); })(DIFFTREE);
NODES.forEach((n,i)=>{ if(n.kind==='ANY') SEL[i]=0; else if(n.kind==='OPT') SEL[i]=1; else if(n.kind==='MULTI') SEL[i]=1; });
const IDX = new Map(); NODES.forEach((n,i)=>IDX.set(n,i));

function gen(node){
  switch(node.kind){
    case 'ALL': {
      if(node.label==='Empty') return [];
      let kids=[]; (node.children||[]).forEach(c=>kids.push(...gen(c)));
      if(node.label==='Seq') return kids;
      return [{label:node.label, value:node.value||'', children:kids}];
    }
    case 'ANY': {
      const i=SEL[IDX.get(node)]||0;
      return gen(node.children[Math.min(i,node.children.length-1)]);
    }
    case 'OPT': return (SEL[IDX.get(node)]??1)? gen(node.children[0]) : [];
    case 'MULTI': {
      const n=SEL[IDX.get(node)]??1; let out=[];
      for(let k=0;k<n;k++) out.push(...gen(node.children[0]));
      return out;
    }
  }
  return [];
}

function child(n,label){ return (n.children||[]).find(c=>c.label===label); }
function quoted(s){ return /^[A-Za-z_][A-Za-z0-9_.]*$/.test(s)? s : "'"+s.replace(/'/g,"''")+"'"; }

function sql(n){
  const kids=n.children||[];
  switch(n.label){
    case 'Select': {
      let parts=['SELECT'];
      if(child(n,'Distinct')) parts.push('DISTINCT');
      const top=child(n,'Top'); if(top) parts.push('TOP '+top.value);
      const order=['Project','From','Where','GroupBy','OrderBy','Limit'];
      for(const lab of order){ const c=child(n,lab); if(c) parts.push(sql(c)); }
      return parts.join(' ');
    }
    case 'Project': return kids.map(sql).join(', ');
    case 'From': return 'FROM '+kids.map(sql).join('');
    case 'Where': return 'WHERE '+kids.map(sql).join('');
    case 'GroupBy': return 'GROUP BY '+kids.map(sql).join(', ');
    case 'OrderBy': return 'ORDER BY '+kids.map(sql).join(', ');
    case 'SortKey': return sql(kids[0])+(n.value==='desc'?' DESC':'');
    case 'Top': return 'TOP '+n.value;
    case 'Limit': return 'LIMIT '+n.value;
    case 'Distinct': return 'DISTINCT';
    case 'Table': return n.value;
    case 'ColExpr': {
      const a=child(n,'Alias');
      return n.value+(a?' AS '+a.value:'');
    }
    case 'StrExpr': return quoted(n.value);
    case 'NumExpr': return n.value;
    case 'Star': return '*';
    case 'FuncExpr': {
      const args=kids.filter(c=>c.label!=='Alias').map(sql).join(', ');
      const a=child(n,'Alias');
      return n.value+'('+args+')'+(a?' AS '+a.value:'');
    }
    case 'BiExpr': return (kids[0]?sql(kids[0]):'?')+' '+n.value+' '+(kids[1]?sql(kids[1]):'?');
    case 'Between': return (kids[0]?sql(kids[0]):'?')+' BETWEEN '+(kids[1]?sql(kids[1]):'?')+' AND '+(kids[2]?sql(kids[2]):'?');
    case 'In': return sql(kids[0])+' IN ('+kids.slice(1).map(sql).join(', ')+')';
    case 'Like': return sql(kids[0])+' LIKE '+sql(kids[1]);
    case 'Not': return 'NOT '+pred(kids[0]);
    case 'And': return kids.map(pred).join(' AND ');
    case 'Or': return kids.map(pred).join(' OR ');
    case 'Alias': return n.value;
  }
  return '';
}
function pred(n){ const s=sql(n); return (n.label==='And'||n.label==='Or')? '('+s+')' : s; }

function refresh(){
  const roots=gen(DIFFTREE);
  document.getElementById('sql').textContent = roots.length===1 ? sql(roots[0]) : roots.map(sql).join('; ');
  document.querySelectorAll('[data-slider-label]').forEach(span=>{
    const i=+span.getAttribute('data-slider-label');
    const node=NODES[i];
    const k=SEL[i]||0;
    const alt=node.children[Math.min(k,node.children.length-1)];
    span.textContent = alt && alt.value ? alt.value : ('option '+(k+1));
  });
}

document.querySelectorAll('[data-choice]').forEach(el=>{
  el.addEventListener('input',()=>{
    const i=+el.getAttribute('data-choice');
    const kind=el.getAttribute('data-kind');
    if(kind==='pick') SEL[i]=+el.value;
    else if(kind==='toggle') SEL[i]=el.checked?1:0;
    else if(kind==='count') SEL[i]=Math.max(0,+el.value||0);
    else if(kind==='text'){
      const node=NODES[i];
      const j=(node.children||[]).findIndex(c=>c.value===el.value);
      if(j>=0) SEL[i]=j;
    }
    refresh();
  });
});

const presetsDiv=document.getElementById('presets');
PRESETS.forEach(q=>{
  const btn=document.createElement('button');
  btn.textContent=q;
  btn.addEventListener('click',()=>{ document.getElementById('sql').textContent=q; });
  presetsDiv.appendChild(btn);
});
refresh();
`
