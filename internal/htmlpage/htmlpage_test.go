package htmlpage

import (
	"strings"
	"testing"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/sqlparser"
)

func figure4Tree() *difftree.Node {
	return difftree.NewAll(ast.KindSelect, "",
		difftree.NewAll(ast.KindProject, "",
			difftree.NewAny(
				difftree.NewAll(ast.KindColExpr, "Sales"),
				difftree.NewAll(ast.KindColExpr, "Costs"))),
		difftree.NewAll(ast.KindFrom, "", difftree.NewAll(ast.KindTable, "sales")),
		difftree.NewOpt(difftree.NewAll(ast.KindWhere, "",
			difftree.NewAll(ast.KindBiExpr, "=",
				difftree.NewAll(ast.KindColExpr, "cty"),
				difftree.NewAny(
					difftree.NewAll(ast.KindStrExpr, "USA"),
					difftree.NewAll(ast.KindStrExpr, "EUR"))))))
}

func TestRenderPage(t *testing.T) {
	d := figure4Tree()
	plan, err := assign.BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	ui := plan.First()
	queries := []string{"SELECT Sales FROM sales WHERE cty = USA"}
	page, err := Render(d, ui, queries, "Demo <interface>")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"const DIFFTREE =",
		"const PRESETS =",
		"data-choice=",
		"function gen(",
		"function sql(",
		"SELECT Sales FROM sales WHERE cty = USA",
		"Demo &lt;interface&gt;", // title escaped
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	if strings.Contains(page, "Demo <interface>") {
		t.Error("unescaped title leaked")
	}
	// Every interaction widget has a control bound to a choice index.
	controls := strings.Count(page, "data-choice=")
	if controls < ui.CountWidgets() {
		t.Errorf("controls=%d widgets=%d", controls, ui.CountWidgets())
	}
}

func TestRenderPageStatic(t *testing.T) {
	d := difftree.FromAST(sqlparser.MustParse("select a from t"))
	page, err := Render(d, nil, []string{"select a from t"}, "Static")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "static") {
		t.Error("static note missing")
	}
}

func TestRenderPageMultiAndTabs(t *testing.T) {
	// Adder + tabs + slider + textbox + checkbox all emit controls.
	multi := difftree.NewAll(ast.KindAnd, "",
		difftree.NewMulti(difftree.NewAny(
			difftree.NewAll(ast.KindBetween, "",
				difftree.NewAll(ast.KindColExpr, "u"),
				difftree.NewAll(ast.KindNumExpr, "0"),
				difftree.NewAll(ast.KindNumExpr, "30")),
			difftree.NewAll(ast.KindBetween, "",
				difftree.NewAll(ast.KindColExpr, "g"),
				difftree.NewAll(ast.KindNumExpr, "0"),
				difftree.NewAll(ast.KindNumExpr, "30")))))
	plan, err := assign.BuildPlan(multi)
	if err != nil {
		t.Fatal(err)
	}
	page, err := Render(multi, plan.First(), nil, "adder")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "data-kind=\"count\"") {
		t.Error("adder count control missing")
	}
}
