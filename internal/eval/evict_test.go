package eval

import (
	"sync"
	"testing"
)

// TestEvictOccupancyNeverExceedsCapacity streams far more distinct states
// than the cache holds and checks, at every step, that no shard ring ever
// grows past its per-shard bound and that the global entry count never
// exceeds Capacity.
func TestEvictOccupancyNeverExceedsCapacity(t *testing.T) {
	const maxEntries = 256
	c := NewCache(maxEntries)
	capTotal := c.Stats().Capacity
	if capTotal < maxEntries {
		t.Fatalf("capacity %d below requested %d", capTotal, maxEntries)
	}
	for i := 0; i < 50*maxEntries; i++ {
		c.SetCost(uint64(i)*0x9e3779b97f4a7c15, float64(i))
		if i%97 != 0 {
			continue
		}
		for s := range c.shards {
			if n := len(c.shards[s].ring); n > c.maxPerShard {
				t.Fatalf("shard %d occupancy %d exceeds per-shard cap %d", s, n, c.maxPerShard)
			}
		}
		if st := c.Stats(); st.Entries > st.Capacity {
			t.Fatalf("entries %d exceed capacity %d", st.Entries, st.Capacity)
		}
	}
	st := c.Stats()
	if st.Entries != st.Capacity {
		t.Errorf("steady-state occupancy %d, want capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Error("a 50x-capacity stream recorded no evictions")
	}
}

// TestEvictHotEntriesSurviveScan interleaves a one-shot cold stream with
// periodic touches of a small hot set: second-chance must keep every hot
// entry resident while the scan churns through the rest of the ring.
func TestEvictHotEntriesSurviveScan(t *testing.T) {
	const maxEntries = 1024
	c := NewCache(maxEntries)

	hot := make([]uint64, 32)
	for i := range hot {
		hot[i] = uint64(i+1) * 0x9e3779b97f4a7c15
		c.SetCost(hot[i], float64(i))
	}
	touch := func() {
		for i, k := range hot {
			v, ok := c.Cost(k)
			if !ok {
				t.Fatalf("hot entry %d evicted by scan traffic", i)
			}
			if v != float64(i) {
				t.Fatalf("hot entry %d corrupted: %v", i, v)
			}
		}
	}
	// The scan inserts ~half a shard ring between hot touches, so the clock
	// hand passes every slot many times over while each hot entry's
	// reference bit is refreshed well within one revolution.
	const scanLen = 20 * maxEntries
	cold := uint64(1 << 32)
	for i := 0; i < scanLen; i++ {
		cold += 0x9e3779b97f4a7c15
		c.SetCost(cold, 1)
		if i%(maxEntries/128) == 0 {
			touch()
		}
	}
	touch()
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("scan recorded no evictions")
	}
}

// TestEvictRace hammers a deliberately tiny cache (heavy eviction on every
// path) from 8 workers; under `go test -race` this is the concurrency
// exercise for the CLOCK ring bookkeeping. Values read back must always be
// the value written for that key — eviction may drop entries, never corrupt
// them.
func TestEvictRace(t *testing.T) {
	c := NewCache(shardCount * 2) // two slots per shard
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				key := uint64((i + w*17) % 509)
				switch i % 3 {
				case 0:
					c.SetCost(key, float64(key))
				case 1:
					if v, ok := c.Cost(key); ok && v != float64(key) {
						t.Errorf("worker %d: cost %v for key %d", w, v, key)
					}
				case 2:
					c.SetLegal(key, key%2 == 0)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Error("tiny cache under 8 workers recorded no evictions")
	}
}
