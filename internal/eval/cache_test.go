package eval

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/rules"
	"repro/internal/workload"
)

// sizeCapFor mirrors search.SizeCap (importing internal/search here would
// be an import cycle: search uses eval).
func sizeCapFor(init *difftree.Node) int {
	if cap := 4 * init.Size(); cap > 64 {
		return cap
	}
	return 64
}

func figure1Engine(t *testing.T, cache *Cache) *Engine {
	t.Helper()
	log := workload.PaperFigure1Log()
	init, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{
		Log:     log,
		Model:   cost.Default(layout.Wide),
		Samples: 3,
		Rules:   rules.All(),
		SizeCap: sizeCapFor(init),
		Seed:    1,
	}, cache)
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(0)
	if _, ok := c.Cost(42); ok {
		t.Fatal("empty cache hit")
	}
	c.SetCost(42, 3.5)
	if v, ok := c.Cost(42); !ok || v != 3.5 {
		t.Fatalf("Cost = %v, %v", v, ok)
	}
	c.SetLegal(42, true)
	c.SetLegal(43, false)
	if v, ok := c.Legal(42); !ok || !v {
		t.Fatal("legal verdict lost")
	}
	if v, ok := c.Legal(43); !ok || v {
		t.Fatal("illegal verdict lost")
	}
	ms := []rules.Move{{Rule: "Unwrap", Path: difftree.Path{0}}}
	c.SetMoves(42, ms)
	got, ok := c.Moves(42)
	if !ok || len(got) != 1 || got[0].Rule != "Unwrap" {
		t.Fatalf("Moves = %v, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.HitRate(); r <= 0 || r >= 1 {
		t.Fatalf("hit rate = %f", r)
	}
}

// TestCacheCapEvicts: a full shard admits new states by evicting the CLOCK
// victim instead of refusing the insert.
func TestCacheCapEvicts(t *testing.T) {
	c := NewCache(shardCount) // one entry per shard
	// Fill shard 0 (keys that are multiples of shardCount land in shard 0).
	c.SetCost(0*shardCount, 1)
	c.SetCost(1*shardCount, 2) // same shard, over cap: evicts key 0
	if _, ok := c.Cost(1 * shardCount); !ok {
		t.Fatal("over-cap insert was refused instead of evicting")
	}
	if _, ok := c.Cost(0 * shardCount); ok {
		t.Fatal("CLOCK victim survived a full-shard insert")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	c.SetLegal(1*shardCount, true) // update of resident entry lands in place
	if v, ok := c.Legal(1 * shardCount); !ok || !v {
		t.Fatal("update to resident entry lost")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (update must not insert)", st.Entries)
	}
}

// TestCacheRace hammers one shared cache from 8 workers with overlapping
// keys and all three entry aspects; run under `go test -race` (CI does) it
// doubles as the data-race exercise for the shard locking.
func TestCacheRace(t *testing.T) {
	c := NewCache(1 << 12)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := uint64(i % 257) // heavy key overlap across workers
				switch i % 5 {
				case 0:
					c.SetCost(key, float64(key))
				case 1:
					if v, ok := c.Cost(key); ok && v != float64(key) {
						t.Errorf("worker %d: cost %v for key %d", w, v, key)
					}
				case 2:
					c.SetLegal(key, key%2 == 0)
				case 3:
					c.SetMoves(key, []rules.Move{{Rule: "Unwrap"}})
				case 4:
					if ms, ok := c.Moves(key); ok && len(ms) != 1 {
						t.Errorf("worker %d: moves %v for key %d", w, ms, key)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Hits+st.Misses == 0 {
		t.Error("no traffic recorded")
	}
}

// TestEngineDeterministicAndShared: 8 workers hammering one shared cache
// through real engines must observe exactly the values an uncached engine
// computes — state evaluation is a pure function of (config, state), so a
// cache hit is indistinguishable from a recompute.
func TestEngineDeterministicAndShared(t *testing.T) {
	ref := figure1Engine(t, nil) // uncached reference
	shared := NewCache(0)

	log := workload.PaperFigure1Log()
	init, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	states := []*difftree.Node{init}
	for _, next := range ref.Neighbors(init) {
		states = append(states, next)
	}
	if len(states) < 3 {
		t.Fatalf("too few states to exercise: %d", len(states))
	}

	wantCost := make([]float64, len(states))
	wantMoves := make([]int, len(states))
	for i, s := range states {
		wantCost[i] = ref.StateCost(s)
		wantMoves[i] = len(ref.Moves(s))
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := figure1Engine(t, shared)
			for rep := 0; rep < 3; rep++ {
				for i, s := range states {
					if c := eng.StateCost(s); c != wantCost[i] {
						t.Errorf("worker %d: state %d cost %v, want %v", w, i, c, wantCost[i])
					}
					if n := len(eng.Moves(s)); n != wantMoves[i] {
						t.Errorf("worker %d: state %d moves %d, want %d", w, i, n, wantMoves[i])
					}
					if !eng.LegalState(s) {
						t.Errorf("worker %d: state %d illegal", w, i)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := shared.Stats()
	if st.Hits == 0 {
		t.Error("shared cache saw no hits across 8 workers")
	}
	if st.Entries == 0 {
		t.Error("shared cache stayed empty")
	}
}

// TestEngineFingerprintIsolation: engines with different configs sharing
// one cache must not serve each other's entries.
func TestEngineFingerprintIsolation(t *testing.T) {
	shared := NewCache(0)
	log := workload.PaperFigure1Log()
	init, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *Engine {
		return New(Config{
			Log: log, Model: cost.Default(layout.Wide), Samples: 3,
			Rules: rules.All(), SizeCap: sizeCapFor(init), Seed: seed,
		}, shared)
	}
	a, b := mk(1), mk(2)
	ca, cb := a.StateCost(init), b.StateCost(init)
	if math.IsInf(ca, 1) || math.IsInf(cb, 1) {
		t.Fatal("initial state must have finite cost")
	}
	// Same state, different eval seeds: the sampled costs are allowed to
	// coincide numerically, but each engine must recompute rather than hit
	// the other's entry — observable via the entry count.
	if st := shared.Stats(); st.Entries < 2 {
		t.Errorf("want separate entries per fingerprint, got %d", st.Entries)
	}
	if got := a.StateCost(init); got != ca {
		t.Errorf("engine a flapped: %v then %v", ca, got)
	}
}

// TestCacheReset: Reset returns the cache to its pristine state and is
// followed by correct recomputation.
func TestCacheReset(t *testing.T) {
	c := NewCache(0)
	c.SetCost(1, 2.5)
	c.SetLegal(2, true)
	c.Cost(1)
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Reset left state behind: %+v", st)
	}
	if _, ok := c.Cost(1); ok {
		t.Fatal("entry survived Reset")
	}
	c.SetCost(1, 2.5)
	if v, ok := c.Cost(1); !ok || v != 2.5 {
		t.Fatal("cache unusable after Reset")
	}
}
