package eval

import (
	"bytes"
	"testing"
)

// FuzzLoadSnapshot asserts the import-safety property end to end: no byte
// stream — valid, truncated, bit-flipped, or adversarial — may panic the
// decoder, and any stream that fails validation must leave the cache
// completely untouched (verify-before-insert).
func FuzzLoadSnapshot(f *testing.F) {
	// Seed corpus: a real snapshot, its prefix, and structured near-misses.
	c := NewCache(0)
	c.SetCost(0x1234, 1.25)
	c.SetLegal(0x1234, true)
	c.SetLegal(0x9999, false)
	var buf bytes.Buffer
	if _, err := c.Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(snapMagic))
	f.Add([]byte("mcuisnp0"))
	f.Add([]byte{})
	flipped := bytes.Clone(valid)
	flipped[len(flipped)-1] ^= 0xff // checksum corruption
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := NewCache(0)
		n, err := dst.LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			if n != 0 {
				t.Fatalf("failed import reported %d entries", n)
			}
			if got := dst.Stats().Entries; got != 0 {
				t.Fatalf("failed import planted %d entries", got)
			}
			return
		}
		// Only a checksum-valid stream may import; re-importing it must be
		// accepted and idempotent.
		if _, err := dst.LoadSnapshot(bytes.NewReader(data)); err != nil {
			t.Fatalf("valid snapshot failed on re-import: %v", err)
		}
	})
}
