package eval

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/difftree"
)

// warmFigure1Cache runs the Figure 1 workload's hot primitives through a
// fresh cache and returns it together with the engine's (key, cost) pairs
// for later comparison.
func warmFigure1Cache(t *testing.T) (*Cache, *Engine, map[uint64]float64) {
	t.Helper()
	c := NewCache(0)
	eng := figure1Engine(t, c)
	init, err := difftree.Initial(eng.cfg.Log)
	if err != nil {
		t.Fatal(err)
	}
	costs := make(map[uint64]float64)
	// Walk two plies of neighbors: enough states for a meaningful snapshot.
	frontier := []*difftree.Node{init}
	for depth := 0; depth < 2 && len(costs) < 200; depth++ {
		var next []*difftree.Node
		for _, d := range frontier {
			costs[eng.key(difftree.Hash(d))] = eng.StateCost(d)
			eng.LegalState(d)
			next = append(next, eng.Neighbors(d)...)
		}
		frontier = next
	}
	if len(costs) < 3 {
		t.Fatalf("expected a non-trivial warm set, got %d states", len(costs))
	}
	return c, eng, costs
}

func snapshotBytes(t *testing.T, c *Cache) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := c.Snapshot(&buf)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if n <= 0 {
		t.Fatalf("Snapshot exported %d entries", n)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	src, eng, costs := warmFigure1Cache(t)
	raw := snapshotBytes(t, src)

	dst := NewCache(0)
	n, err := dst.LoadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if n <= 0 {
		t.Fatalf("imported %d entries", n)
	}
	for key, want := range costs {
		got, ok := dst.Cost(key)
		if !ok {
			t.Fatalf("key %#x missing after import", key)
		}
		if got != want {
			t.Fatalf("key %#x: imported cost %v != original %v", key, got, want)
		}
	}
	// The fingerprint inventory travels with the entries.
	fps := dst.Fingerprints()
	if len(fps) != 1 || fps[0] != eng.fp {
		t.Fatalf("imported fingerprints = %v, want [%#x]", fps, eng.fp)
	}
}

func TestSnapshotImportIdempotentAndFirstWriteWins(t *testing.T) {
	src, _, costs := warmFigure1Cache(t)
	raw := snapshotBytes(t, src)

	dst := NewCache(0)
	// Pre-populate one key with a sentinel value: import must not clobber it.
	var anyKey uint64
	for k := range costs {
		anyKey = k
		break
	}
	dst.SetCost(anyKey, 12345.5)

	before := dst.Stats().Entries
	_ = before
	if _, err := dst.LoadSnapshot(bytes.NewReader(raw)); err != nil {
		t.Fatalf("first import: %v", err)
	}
	entries1 := dst.Stats().Entries
	if _, err := dst.LoadSnapshot(bytes.NewReader(raw)); err != nil {
		t.Fatalf("second import: %v", err)
	}
	if entries2 := dst.Stats().Entries; entries2 != entries1 {
		t.Fatalf("re-import changed occupancy: %d -> %d", entries1, entries2)
	}
	if got, _ := dst.Cost(anyKey); got != 12345.5 {
		t.Fatalf("import clobbered a pre-existing entry: got %v, want sentinel 12345.5", got)
	}
}

func TestSetCostFirstWriteWins(t *testing.T) {
	c := NewCache(0)
	c.SetCost(7, 1.5)
	c.SetCost(7, 99)
	if v, ok := c.Cost(7); !ok || v != 1.5 {
		t.Fatalf("SetCost overwrote: got %v, want 1.5", v)
	}
	c.SetLegal(7, true)
	c.SetLegal(7, false)
	if legal, ok := c.Legal(7); !ok || !legal {
		t.Fatalf("SetLegal overwrote: got legal=%v, want true", legal)
	}
}

func TestSnapshotTruncationNeverPanics(t *testing.T) {
	src, _, _ := warmFigure1Cache(t)
	raw := snapshotBytes(t, src)
	for cut := 0; cut < len(raw); cut += 1 + cut/16 {
		dst := NewCache(0)
		n, err := dst.LoadSnapshot(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(raw))
		}
		if n != 0 {
			t.Fatalf("truncation at %d imported %d entries", cut, n)
		}
		if got := dst.Stats().Entries; got != 0 {
			t.Fatalf("truncation at %d left %d entries in the cache", cut, got)
		}
	}
}

func TestSnapshotCorruptionRejectedBeforeInsert(t *testing.T) {
	src, _, _ := warmFigure1Cache(t)
	raw := snapshotBytes(t, src)
	// Flip one byte in the entry region (past magic + kind table) — the
	// checksum must catch it, and nothing may land in the cache.
	corrupt := bytes.Clone(raw)
	corrupt[len(corrupt)/2] ^= 0xff
	dst := NewCache(0)
	_, err := dst.LoadSnapshot(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if !errors.Is(err, ErrSnapshotFormat) && !errors.Is(err, ErrSnapshotSchema) {
		t.Fatalf("corrupt snapshot: unexpected error class %v", err)
	}
	if got := dst.Stats().Entries; got != 0 {
		t.Fatalf("corrupt snapshot planted %d entries", got)
	}
}

func TestSnapshotBadMagicRejected(t *testing.T) {
	src, _, _ := warmFigure1Cache(t)
	raw := snapshotBytes(t, src)
	raw[0] ^= 0x01
	if _, err := NewCache(0).LoadSnapshot(bytes.NewReader(raw)); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("bad magic: got %v, want ErrSnapshotFormat", err)
	}
}

func TestSnapshotKindGuard(t *testing.T) {
	src, _, _ := warmFigure1Cache(t)
	raw := snapshotBytes(t, src)
	names := ast.KindNames()

	// A snapshot claiming more kinds than this build knows: written by a
	// newer grammar, must be rejected as a schema mismatch.
	newer := bytes.Clone(raw)
	binary.LittleEndian.PutUint16(newer[8:10], uint16(len(names)+1))
	if _, err := NewCache(0).LoadSnapshot(bytes.NewReader(newer)); !errors.Is(err, ErrSnapshotSchema) {
		t.Fatalf("newer-grammar snapshot: got %v, want ErrSnapshotSchema", err)
	}

	// A renamed kind at the same index: numbering changed, must be rejected.
	// Kind 0 is "Invalid"; its name bytes start at offset 8+2+1.
	renamed := bytes.Clone(raw)
	renamed[11] ^= 0x20 // "Invalid" -> "invalid"
	_, err := NewCache(0).LoadSnapshot(bytes.NewReader(renamed))
	if !errors.Is(err, ErrSnapshotSchema) {
		t.Fatalf("renamed-kind snapshot: got %v, want ErrSnapshotSchema", err)
	}
}

func TestSnapshotImportIntoSmallerCacheEvicts(t *testing.T) {
	src, _, _ := warmFigure1Cache(t)
	raw := snapshotBytes(t, src)
	exported := src.Stats().Entries

	// One slot per shard: far smaller than the snapshot.
	small := NewCache(shardCount)
	n, err := small.LoadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadSnapshot into small cache: %v", err)
	}
	if n != exported {
		t.Fatalf("import processed %d entries, snapshot had %d", n, exported)
	}
	st := small.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("occupancy %d exceeds capacity %d", st.Entries, st.Capacity)
	}
}

func TestSnapshotSkipsNonPortableAspects(t *testing.T) {
	c := NewCache(0)
	// moves/pools-only entries hold process-local pointers; they must not be
	// exported, and an entry with no portable aspect must not appear at all.
	c.SetMoves(1, nil)
	c.SetPools(2, [4][]difftree.Path{})
	c.SetCost(3, 7)
	var buf bytes.Buffer
	n, err := c.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("exported %d entries, want 1 (cost-only)", n)
	}
	dst := NewCache(0)
	if _, err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if v, ok := dst.Cost(3); !ok || v != 7 {
		t.Fatalf("cost entry lost: %v %v", v, ok)
	}
	if _, ok := dst.Moves(1); ok {
		t.Fatal("moves travelled across the snapshot")
	}
}

func TestSnapshotPreservesSpecialFloats(t *testing.T) {
	c := NewCache(0)
	c.SetCost(1, math.Inf(1)) // illegal-assignment states cost +Inf
	var buf bytes.Buffer
	if _, err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewCache(0)
	if _, err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if v, ok := dst.Cost(1); !ok || !math.IsInf(v, 1) {
		t.Fatalf("+Inf did not round-trip: %v %v", v, ok)
	}
}

func TestSnapshotFileAtomicRoundTrip(t *testing.T) {
	src, _, costs := warmFigure1Cache(t)
	path := filepath.Join(t.TempDir(), "cache.snap")
	n, err := SaveSnapshotFile(src, path)
	if err != nil {
		t.Fatalf("SaveSnapshotFile: %v", err)
	}
	if n <= 0 {
		t.Fatalf("saved %d entries", n)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	dst := NewCache(0)
	if _, err := LoadSnapshotFile(dst, path); err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	for key, want := range costs {
		if got, ok := dst.Cost(key); !ok || got != want {
			t.Fatalf("key %#x: %v (ok=%v), want %v", key, got, ok, want)
		}
	}
	// Overwrite must go through the same atomic path.
	if _, err := SaveSnapshotFile(src, path); err != nil {
		t.Fatalf("re-save: %v", err)
	}
}

func TestLoadSnapshotFileMissing(t *testing.T) {
	if _, err := LoadSnapshotFile(NewCache(0), filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Fatal("missing file accepted")
	}
}
