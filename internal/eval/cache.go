// Package eval implements the memoized evaluation engine behind every
// search strategy: a concurrency-safe transposition cache keyed by the
// difftree's structural hash, and an Engine that computes — and memoizes —
// the three expensive per-state quantities of the search:
//
//   - StateCost, the paper's reward primitive C(W,Q) sampled over k widget
//     assignments,
//   - LegalState, the system invariant (size prune + every query stays
//     expressible), and
//   - Moves, the legal move set.
//
// Scoring a state is deterministic per state: the reward-sampling RNG is
// seeded from the state's hash mixed with the engine's base seed, so a
// cached value is bit-identical to what any worker would recompute. That is
// what lets one cache be shared by all root-parallel MCTS workers and the
// beam/greedy/random/exhaustive searchers without changing any result: with
// or without the cache, for a fixed seed, every strategy returns the same
// best cost.
package eval

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/difftree"
	"repro/internal/rules"
)

// shardCount spreads cache keys over independently locked shards; a power
// of two so shard selection is a mask.
const shardCount = 64

// DefaultMaxEntries bounds the cache at roughly a million states, a few
// hundred MB worst case on the paper's logs — far beyond what a search
// budget visits, so eviction is the exception, not the rule.
const DefaultMaxEntries = 1 << 20

// Cache is a concurrency-safe transposition table over difftree states.
// Entries accumulate the memoized aspects of a state (cost, legality, move
// set) as they are first computed. A Cache is scoped to one evaluation
// configuration fingerprint (see Engine): engines mix their fingerprint
// into every key, so one Cache instance can safely back generators with
// different logs, screens, or seeds without cross-talk.
//
// Eviction policy: each shard is an independent CLOCK (second-chance) ring.
// Every lookup that finds an entry sets the entry's reference bit; when a
// full shard must admit a new state, a clock hand sweeps the ring, clearing
// reference bits as it passes, and evicts the first entry found with its
// bit already clear. Entries revisited between sweeps therefore survive
// scan-heavy workloads (a long stream of one-shot states evicts other
// one-shot states, not the hot set), at the cost of a single bit per entry
// and no extra allocation on the lookup path. Evicting never changes a
// result: state evaluation is a pure function of (config, state), so a
// dropped entry is simply recomputed bit-identically on the next visit —
// correctness never depends on an insert landing or an entry staying
// resident. That is the contract that lets a long-lived daemon run a
// tightly bounded cache under an unbounded stream of workloads.
type Cache struct {
	maxPerShard int
	shards      [shardCount]shard
	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64

	// fps is the config-fingerprint inventory: every engine fingerprint that
	// has attached to this cache (see Engine), plus any carried in by an
	// imported snapshot. Purely descriptive — keys already mix the
	// fingerprint in, so isolation never depends on it — but snapshots embed
	// it so an operator can see which configurations a warm cache covers.
	fpMu sync.Mutex
	fps  map[uint64]struct{}
}

// shard is one CLOCK ring: the map resolves a key to its ring slot, the
// ring holds the entries (inline, off the GC scan list for the common
// fields), and hand is the clock position of the next eviction sweep. The
// ring grows by appending until it reaches capacity and is never shrunk
// except by Reset.
type shard struct {
	mu   sync.Mutex
	m    map[uint64]int
	ring []slot
	hand int
}

// slot is one ring position: the resident key, its second-chance reference
// bit, and the entry payload. All fields are guarded by the shard mutex.
type slot struct {
	key uint64
	ref bool
	e   entry
}

// entry is the memoized record of one (configuration, state) pair. Entries
// are stored by value — the search retains hundreds of thousands of
// one-shot states, and inline storage keeps them off the GC scan list.
// Fields are guarded by the owning shard's mutex.
type entry struct {
	cost     float64
	hasCost  bool
	legal    uint8 // 0 unknown, 1 legal, 2 illegal
	moves    []rules.Move
	hasMoves bool
	pools    [4][]difftree.Path // node paths by difftree.Kind
	hasPools bool
}

// NewCache returns a cache holding at least maxEntries states
// (DefaultMaxEntries when <= 0). The bound is enforced per shard — rounded
// up to shard granularity, so total capacity is in [maxEntries,
// maxEntries+shardCount) — which means a hot shard can start evicting while
// others still have room; keys are scattered by a mixed hash, so shards
// fill evenly in practice. A full shard admits new states by evicting cold
// ones (per-shard CLOCK, see Cache), so a long-lived process keeps
// memoizing its current working set forever; Reset remains available for
// callers that want a hard rotation point.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	perShard := (maxEntries + shardCount - 1) / shardCount
	c := &Cache{maxPerShard: perShard, fps: make(map[uint64]struct{})}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]int)
	}
	return c
}

// noteFingerprint records one configuration fingerprint in the inventory.
func (c *Cache) noteFingerprint(fp uint64) {
	c.fpMu.Lock()
	c.fps[fp] = struct{}{}
	c.fpMu.Unlock()
}

// Fingerprints returns the config-fingerprint inventory in sorted order:
// every engine configuration that has attached to this cache, plus any
// inventory merged in by LoadSnapshot.
func (c *Cache) Fingerprints() []uint64 {
	c.fpMu.Lock()
	out := make([]uint64, 0, len(c.fps))
	for fp := range c.fps {
		out = append(out, fp)
	}
	c.fpMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (c *Cache) shard(key uint64) *shard { return &c.shards[key&(shardCount-1)] }

// get returns key's entry, marking its reference bit (the CLOCK "used since
// the hand last passed" signal). Caller must hold s.mu.
func (s *shard) get(key uint64) (entry, bool) {
	i, ok := s.m[key]
	if !ok {
		return entry{}, false
	}
	s.ring[i].ref = true
	return s.ring[i].e, true
}

// insert admits key into the shard, evicting the hand's second-chance
// victim when the ring is at capacity, and returns the slot index. Caller
// must hold s.mu.
func (c *Cache) insert(s *shard, key uint64) int {
	if len(s.ring) < c.maxPerShard {
		s.ring = append(s.ring, slot{key: key})
		s.m[key] = len(s.ring) - 1
		return len(s.ring) - 1
	}
	// CLOCK sweep: clear reference bits as the hand passes; evict the first
	// slot whose bit is already clear. Terminates within two revolutions.
	for {
		sl := &s.ring[s.hand]
		if sl.ref {
			sl.ref = false
			s.hand = (s.hand + 1) % len(s.ring)
			continue
		}
		delete(s.m, sl.key)
		*sl = slot{key: key}
		i := s.hand
		s.m[key] = i
		s.hand = (s.hand + 1) % len(s.ring)
		c.evictions.Add(1)
		return i
	}
}

// lockFor returns key's entry slot under the shard lock, creating the entry
// (evicting a cold one when the shard is at capacity) if absent. New entries
// are admitted with a clear reference bit, so a pure scan workload evicts
// its own one-shot states before touching entries that have been hit since
// the hand last passed. The caller must s.mu.Unlock after writing.
func (c *Cache) lockFor(key uint64) (*shard, *entry) {
	s := c.shard(key)
	s.mu.Lock()
	i, ok := s.m[key]
	if !ok {
		i = c.insert(s, key)
	}
	return s, &s.ring[i].e
}

// CachedState is a read-only snapshot of one state's full memo record — every
// aspect the engine tracks, retrieved by a single keyed shard probe. The
// Moves and Pools slices are shared with the cache: callers must not modify
// them.
type CachedState struct {
	Cost     float64
	HasCost  bool
	Legal    bool
	HasLegal bool
	Moves    []rules.Move
	HasMoves bool
	Pools    [4][]difftree.Path
	HasPools bool
}

// Probe returns key's full memo record in one shard lookup, marking the
// CLOCK reference bit. It does not touch the hit/miss counters; callers
// account per aspect with Count. The engine's hot path derives the mixed key
// once and probes once, instead of re-keying around per-aspect getters.
func (c *Cache) Probe(key uint64) (CachedState, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, found := s.get(key)
	s.mu.Unlock()
	if !found {
		return CachedState{}, false
	}
	return CachedState{
		Cost: e.cost, HasCost: e.hasCost,
		Legal: e.legal == 1, HasLegal: e.legal != 0,
		Moves: e.moves, HasMoves: e.hasMoves,
		Pools: e.pools, HasPools: e.hasPools,
	}, true
}

// Count records one aspect lookup outcome; pairs with Probe.
func (c *Cache) Count(hit bool) { c.count(hit) }

// Cost returns the memoized state cost.
func (c *Cache) Cost(key uint64) (float64, bool) {
	e, ok := c.Probe(key)
	ok = ok && e.HasCost
	c.count(ok)
	if !ok {
		return 0, false
	}
	return e.Cost, true
}

// SetCost records a state cost. Like every setter, the first write wins:
// evaluation is a pure function of (config, state), so two writers for one
// key computed the same value and there is nothing to overwrite — and a
// snapshot import (which reuses these semantics) can never clobber an entry
// a live search populated.
func (c *Cache) SetCost(key uint64, v float64) {
	s, e := c.lockFor(key)
	if !e.hasCost {
		e.cost, e.hasCost = v, true
	}
	s.mu.Unlock()
}

// Legal returns the memoized legality verdict.
func (c *Cache) Legal(key uint64) (legal, ok bool) {
	e, found := c.Probe(key)
	ok = found && e.HasLegal
	legal = ok && e.Legal
	c.count(ok)
	return legal, ok
}

// SetLegal records a legality verdict (first write wins, see SetCost).
func (c *Cache) SetLegal(key uint64, legal bool) {
	s, e := c.lockFor(key)
	if e.legal == 0 {
		if legal {
			e.legal = 1
		} else {
			e.legal = 2
		}
	}
	s.mu.Unlock()
}

// importEntry merges one snapshot entry's value aspects, first-write-wins
// per aspect: an import is idempotent, and never clobbers anything a live
// search has already computed. legal uses the entry encoding (0 unknown,
// 1 legal, 2 illegal).
func (c *Cache) importEntry(key uint64, cost float64, hasCost bool, legal uint8) {
	s, e := c.lockFor(key)
	if hasCost && !e.hasCost {
		e.cost, e.hasCost = cost, true
	}
	if legal != 0 && e.legal == 0 {
		e.legal = legal
	}
	s.mu.Unlock()
}

// Moves returns the memoized legal move set. The returned slice is shared:
// callers must not modify it.
func (c *Cache) Moves(key uint64) ([]rules.Move, bool) {
	e, found := c.Probe(key)
	ok := found && e.HasMoves
	c.count(ok)
	if !ok {
		return nil, false
	}
	return e.Moves, true
}

// SetMoves records a legal move set. The cache takes ownership of ms.
func (c *Cache) SetMoves(key uint64, ms []rules.Move) {
	s, e := c.lockFor(key)
	if !e.hasMoves {
		e.moves, e.hasMoves = ms, true
	}
	s.mu.Unlock()
}

// Pools returns the memoized per-kind node path pools. The returned slices
// are shared: callers must not modify them.
func (c *Cache) Pools(key uint64) ([4][]difftree.Path, bool) {
	e, found := c.Probe(key)
	ok := found && e.HasPools
	c.count(ok)
	if !ok {
		return [4][]difftree.Path{}, false
	}
	return e.Pools, true
}

// SetPools records per-kind node path pools. The cache takes ownership.
func (c *Cache) SetPools(key uint64, pools [4][]difftree.Path) {
	s, e := c.lockFor(key)
	if !e.hasPools {
		e.pools, e.hasPools = pools, true
	}
	s.mu.Unlock()
}

// Reset drops every memoized state (all fingerprints) and zeroes the
// counters, returning the cache to its freshly constructed state. The
// fingerprint inventory is kept: it describes the engines attached over the
// cache's lifetime (they register once, at construction), not the resident
// entries. Safe to call concurrently with readers: in-flight lookups simply
// miss and recompute — by construction a recompute equals the dropped value.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[uint64]int)
		s.ring = nil
		s.hand = 0
		s.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

func (c *Cache) count(hit bool) {
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
}

// Stats reports cumulative cache effectiveness.
type Stats struct {
	Hits      int64 // lookups answered from the cache
	Misses    int64 // lookups that had to compute
	Entries   int64 // states currently resident
	Evictions int64 // states evicted to admit new ones
	Capacity  int64 // maximum resident states across all shards
}

// HitRate is Hits/(Hits+Misses), 0 when the cache saw no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Capacity:  int64(c.maxPerShard) * shardCount,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.ring))
		s.mu.Unlock()
	}
	return st
}
