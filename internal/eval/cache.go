// Package eval implements the memoized evaluation engine behind every
// search strategy: a concurrency-safe transposition cache keyed by the
// difftree's structural hash, and an Engine that computes — and memoizes —
// the three expensive per-state quantities of the search:
//
//   - StateCost, the paper's reward primitive C(W,Q) sampled over k widget
//     assignments,
//   - LegalState, the system invariant (size prune + every query stays
//     expressible), and
//   - Moves, the legal move set.
//
// Scoring a state is deterministic per state: the reward-sampling RNG is
// seeded from the state's hash mixed with the engine's base seed, so a
// cached value is bit-identical to what any worker would recompute. That is
// what lets one cache be shared by all root-parallel MCTS workers and the
// beam/greedy/random/exhaustive searchers without changing any result: with
// or without the cache, for a fixed seed, every strategy returns the same
// best cost.
package eval

import (
	"sync"
	"sync/atomic"

	"repro/internal/difftree"
	"repro/internal/rules"
)

// shardCount spreads cache keys over independently locked shards; a power
// of two so shard selection is a mask.
const shardCount = 64

// DefaultMaxEntries bounds the cache at roughly a million states, a few
// hundred MB worst case on the paper's logs — far beyond what a search
// budget visits, so eviction is the exception, not the rule.
const DefaultMaxEntries = 1 << 20

// Cache is a concurrency-safe transposition table over difftree states.
// Entries accumulate the memoized aspects of a state (cost, legality, move
// set) as they are first computed. A Cache is scoped to one evaluation
// configuration fingerprint (see Engine): engines mix their fingerprint
// into every key, so one Cache instance can safely back generators with
// different logs, screens, or seeds without cross-talk.
type Cache struct {
	maxPerShard int
	shards      [shardCount]shard
	hits        atomic.Int64
	misses      atomic.Int64
}

type shard struct {
	mu sync.Mutex
	m  map[uint64]entry
}

// entry is the memoized record of one (configuration, state) pair. Entries
// are stored by value — the search retains hundreds of thousands of
// one-shot states, and inline map storage keeps them off the GC scan list.
// Fields are guarded by the owning shard's mutex.
type entry struct {
	cost     float64
	hasCost  bool
	legal    uint8 // 0 unknown, 1 legal, 2 illegal
	moves    []rules.Move
	hasMoves bool
	pools    [4][]difftree.Path // node paths by difftree.Kind
	hasPools bool
}

// NewCache returns a cache holding at least maxEntries states
// (DefaultMaxEntries when <= 0). The bound is enforced per shard — rounded
// up to shard granularity, so total capacity is in [maxEntries,
// maxEntries+shardCount) — which means a hot shard can stop accepting new
// states while others still have room; keys are scattered by a mixed hash,
// so shards fill evenly in practice. When a shard is full, new states are
// simply not inserted — existing entries keep serving hits; correctness
// never depends on an insert landing. There is no automatic eviction: a
// cache shared across many distinct workloads eventually fills with states
// that will never be revisited and stops memoizing new ones. Long-lived
// callers that rotate workloads should Reset (or replace) the cache at
// rotation points.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	perShard := (maxEntries + shardCount - 1) / shardCount
	c := &Cache{maxPerShard: perShard}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]entry)
	}
	return c
}

func (c *Cache) shard(key uint64) *shard { return &c.shards[key&(shardCount-1)] }

// update applies fn to key's entry under the shard lock, creating the entry
// if the shard has room; a full shard drops creations (existing entries keep
// serving — correctness never depends on an insert landing).
func (c *Cache) update(key uint64, fn func(*entry)) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if ok || len(s.m) < c.maxPerShard {
		fn(&e)
		s.m[key] = e
	}
	s.mu.Unlock()
}

// Cost returns the memoized state cost.
func (c *Cache) Cost(key uint64) (float64, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, found := s.m[key]
	s.mu.Unlock()
	ok := found && e.hasCost
	c.count(ok)
	if !ok {
		return 0, false
	}
	return e.cost, true
}

// SetCost records a state cost.
func (c *Cache) SetCost(key uint64, v float64) {
	c.update(key, func(e *entry) { e.cost, e.hasCost = v, true })
}

// Legal returns the memoized legality verdict.
func (c *Cache) Legal(key uint64) (legal, ok bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, found := s.m[key]
	s.mu.Unlock()
	ok = found && e.legal != 0
	legal = ok && e.legal == 1
	c.count(ok)
	return legal, ok
}

// SetLegal records a legality verdict.
func (c *Cache) SetLegal(key uint64, legal bool) {
	c.update(key, func(e *entry) {
		if legal {
			e.legal = 1
		} else {
			e.legal = 2
		}
	})
}

// Moves returns the memoized legal move set. The returned slice is shared:
// callers must not modify it.
func (c *Cache) Moves(key uint64) ([]rules.Move, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, found := s.m[key]
	s.mu.Unlock()
	ok := found && e.hasMoves
	c.count(ok)
	if !ok {
		return nil, false
	}
	return e.moves, true
}

// SetMoves records a legal move set. The cache takes ownership of ms.
func (c *Cache) SetMoves(key uint64, ms []rules.Move) {
	c.update(key, func(e *entry) {
		if !e.hasMoves {
			e.moves, e.hasMoves = ms, true
		}
	})
}

// Pools returns the memoized per-kind node path pools. The returned slices
// are shared: callers must not modify them.
func (c *Cache) Pools(key uint64) ([4][]difftree.Path, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, found := s.m[key]
	s.mu.Unlock()
	ok := found && e.hasPools
	c.count(ok)
	if !ok {
		return [4][]difftree.Path{}, false
	}
	return e.pools, true
}

// SetPools records per-kind node path pools. The cache takes ownership.
func (c *Cache) SetPools(key uint64, pools [4][]difftree.Path) {
	c.update(key, func(e *entry) {
		if !e.hasPools {
			e.pools, e.hasPools = pools, true
		}
	})
}

// Reset drops every memoized state (all fingerprints) and zeroes the
// counters, returning the cache to its freshly constructed state. Safe to
// call concurrently with readers: in-flight lookups simply miss and
// recompute — by construction a recompute equals the dropped value.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[uint64]entry)
		s.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
}

func (c *Cache) count(hit bool) {
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
}

// Stats reports cumulative cache effectiveness.
type Stats struct {
	Hits    int64 // lookups answered from the cache
	Misses  int64 // lookups that had to compute
	Entries int64 // states currently resident
}

// HitRate is Hits/(Hits+Misses), 0 when the cache saw no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	st := Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.m))
		s.mu.Unlock()
	}
	return st
}
