package eval

import (
	"testing"

	"repro/internal/difftree"
	"repro/internal/rules"
	"repro/internal/workload"
)

// toggleRule is a parameterized rule: same Name for every instance, but the
// parameter decides whether it applies at all. Two rule sets built from
// different parameterizations must not share cache entries.
type toggleRule struct{ on bool }

func (r toggleRule) Name() string { return "Toggle" }

func (r toggleRule) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if !r.on {
		return nil, false
	}
	return &difftree.Node{Kind: n.Kind, Label: n.Label, Value: n.Value, Children: n.Children}, true
}

// TestFingerprintCoversRuleParameters pins the cross-config isolation fix:
// the config fingerprint used to digest rules by Name() only, so two engines
// whose rule sets shared names but differed in parameterization mapped to
// the same cache keys — and the second engine served the first engine's
// memoized move sets. The fingerprint must cover full rule identity.
func TestFingerprintCoversRuleParameters(t *testing.T) {
	log := workload.PaperFigure1Log()
	base := Config{Log: log, Samples: 1, Seed: 1}

	on, off := base, base
	on.Rules = []rules.Rule{toggleRule{on: true}}
	off.Rules = []rules.Rule{toggleRule{on: false}}

	if fingerprint(on) == fingerprint(off) {
		t.Fatal("configs differing only in rule parameterization fingerprint equally")
	}

	init, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	shared := NewCache(0)
	engOn := New(on, shared)
	engOff := New(off, shared)

	// Order matters for the regression: the enabled engine memoizes its
	// (non-empty) move set first; with colliding keys the disabled engine
	// would then serve that entry instead of its own empty answer.
	if ms := engOn.Moves(init); len(ms) == 0 {
		t.Fatal("enabled toggle rule produced no moves; the collision is not exercised")
	}
	if ms := engOff.Moves(init); len(ms) != 0 {
		t.Errorf("disabled-rule engine served %d moves from the enabled engine's cache entry", len(ms))
	}
}
