package eval

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/rules"
)

// Config fixes one evaluation problem: everything a state's cost, legality,
// and move set depend on. Two engines with equal configs compute identical
// values for every state, which is what makes their cache entries
// interchangeable.
type Config struct {
	Log     []*ast.Node  // the (ordered) query log
	Model   cost.Model   // cost parameters incl. screen constraint
	Samples int          // k random widget assignments per state cost
	Rules   []rules.Rule // transformation rule set gating moves
	SizeCap int          // state-size prune bound (0 = uncapped)
	Seed    int64        // base seed for per-state reward sampling
}

// Engine evaluates difftree states for one Config, memoizing through an
// optional shared Cache. A nil cache disables memoization entirely — every
// call recomputes — which is the reference baseline the bench harness
// compares against. The Engine itself is stateless beyond the cache and
// the delta-evaluation term memo, and safe for concurrent use.
type Engine struct {
	cfg   Config
	cache *Cache
	fp    uint64 // configuration fingerprint, mixed into every cache key

	// terms is the cross-state widget term memo behind delta cost
	// evaluation; nil when memoization is off, so the uncached engine stays
	// the pure recompute-everything reference.
	terms *cost.TermMemo
}

// New builds an engine over cfg, memoizing into cache (nil = uncached).
func New(cfg Config, cache *Cache) *Engine {
	e := &Engine{cfg: cfg, cache: cache, fp: fingerprint(cfg)}
	if cache != nil {
		e.terms = cost.NewTermMemo()
		cache.noteFingerprint(e.fp)
	}
	return e
}

// fingerprint digests every config field a state's evaluation depends on,
// so one Cache can back engines with different configurations without
// cross-talk. Rules are digested by full identity — dynamic type plus field
// values — not just Name(): two rule sets that share names but differ in
// parameterization must not share cache entries.
func fingerprint(cfg Config) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w(uint64(len(cfg.Log)))
	for _, q := range cfg.Log {
		w(ast.Hash(q))
	}
	w(math.Float64bits(cfg.Model.NavUnit))
	w(uint64(cfg.Model.Screen.W))
	w(uint64(cfg.Model.Screen.H))
	w(uint64(cfg.Samples))
	w(uint64(cfg.SizeCap))
	w(uint64(cfg.Seed))
	for _, r := range cfg.Rules {
		h.Write([]byte(r.Name()))
		h.Write([]byte{0})
		fmt.Fprintf(h, "%T|%+v", r, r)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer; it scatters the structural hash so
// shard selection and per-state RNG seeds are well distributed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (e *Engine) key(h uint64) uint64 { return mix64(h ^ e.fp) }

// Enabled reports whether memoization is on.
func (e *Engine) Enabled() bool { return e.cache != nil }

// CacheStats snapshots the backing cache's counters (zero when uncached).
func (e *Engine) CacheStats() Stats {
	if e.cache == nil {
		return Stats{}
	}
	return e.cache.Stats()
}

// Samples returns the configured per-state assignment sample count k.
func (e *Engine) Samples() int { return e.cfg.Samples }

// SizeCap returns the configured state-size prune bound.
func (e *Engine) SizeCap() int { return e.cfg.SizeCap }

// StateCost is the paper's reward primitive: the best cost among the
// cost-greedy first widget assignment plus k random ones. It is a pure
// function of (config, state): the sampling RNG is seeded from the state's
// structural hash mixed with the base seed, never from a shared stream — so
// every worker, cached or not, computes bit-identical values, and a cache
// hit is indistinguishable from a recompute. With memoization on, widget
// cost terms additionally flow through the cross-state delta memo — also
// bit-identical by construction (see cost.TermMemo).
func (e *Engine) StateCost(d *difftree.Node) float64 {
	h := difftree.Hash(d)
	var k uint64
	if e.cache != nil {
		k = e.key(h)
		if v, ok := e.cache.Probe(k); ok && v.HasCost {
			e.cache.Count(true)
			return v.Cost
		}
		e.cache.Count(false)
	}
	rng := rand.New(rand.NewSource(int64(mix64(h ^ uint64(e.cfg.Seed)))))
	c := sampledCost(d, e.cfg.Log, e.cfg.Model, e.cfg.Samples, rng, e.terms)
	if e.cache != nil {
		e.cache.SetCost(k, c)
	}
	return c
}

// SampledCost scores a difftree with the cost-greedy first assignment plus
// k random widget assignments drawn from rng; +Inf when no widget tree
// expresses the log on the screen.
func SampledCost(d *difftree.Node, log []*ast.Node, model cost.Model, k int, rng *rand.Rand) float64 {
	return sampledCost(d, log, model, k, rng, nil)
}

func sampledCost(d *difftree.Node, log []*ast.Node, model cost.Model, k int, rng *rand.Rand, memo *cost.TermMemo) float64 {
	plan, err := assign.BuildPlan(d)
	if err != nil {
		return math.Inf(1)
	}
	var ev *cost.Evaluator
	if memo != nil {
		ev = model.NewEvaluatorShared(d, log, memo)
	} else {
		ev = model.NewEvaluator(d, log)
	}
	if !d.HasChoice() {
		return ev.Evaluate(nil).Total()
	}
	best := ev.Evaluate(plan.First()).Total()
	for i := 0; i < k; i++ {
		if c := ev.Evaluate(plan.Random(rng)).Total(); c < best {
			best = c
		}
	}
	return best
}

// LegalState reports whether d is a valid search state: within the size
// cap, structurally valid, and still expressing every log query. The full
// verdict — size gate included — is memoized, so a hit costs one hash walk
// (itself amortized by per-node hash caching) and one shard lookup.
func (e *Engine) LegalState(d *difftree.Node) bool {
	h := difftree.Hash(d)
	var k uint64
	if e.cache != nil {
		k = e.key(h)
		if v, ok := e.cache.Probe(k); ok && v.HasLegal {
			e.cache.Count(true)
			return v.Legal
		}
		e.cache.Count(false)
	}
	v := (e.cfg.SizeCap <= 0 || d.Size() <= e.cfg.SizeCap) && rules.LegalState(d, e.cfg.Log)
	if e.cache != nil {
		e.cache.SetLegal(k, v)
	}
	return v
}

// spinePool recycles the copy-on-write spine arenas used for candidate
// trees that exist only long enough to be legality-checked.
var spinePool = sync.Pool{New: func() any { return new(difftree.SpineArena) }}

// Moves enumerates d's legal moves — rule pattern matches, the rewrite is
// within the size cap, and every query stays expressible — in deterministic
// order (pre-order paths, rule order), memoized per state. The returned
// slice is shared with the cache; callers must not modify it. Candidate
// trees are spine-allocated from a pooled arena: only the (rule, path)
// pair survives the legality check, never the tree.
func (e *Engine) Moves(d *difftree.Node) []rules.Move {
	h := difftree.Hash(d)
	var k uint64
	if e.cache != nil {
		k = e.key(h)
		if v, ok := e.cache.Probe(k); ok && v.HasMoves {
			e.cache.Count(true)
			return v.Moves
		}
		e.cache.Count(false)
	}
	arena := spinePool.Get().(*difftree.SpineArena)
	var out []rules.Move
	difftree.WalkPath(d, func(n *difftree.Node, p difftree.Path) bool {
		for _, r := range e.cfg.Rules {
			if kinds, ok := rules.MatchKinds[r.Name()]; ok && !kinds[n.Kind] {
				continue
			}
			arena.Reset()
			next, ok := rules.CandidateArena(d, p, r, arena)
			if !ok {
				continue
			}
			if !e.LegalState(next) {
				continue
			}
			out = append(out, rules.Move{Rule: r.Name(), Path: p.Clone()})
		}
		return true
	})
	arena.Reset()
	spinePool.Put(arena)
	if e.cache != nil {
		e.cache.SetMoves(k, out)
	}
	return out
}

// PathPools returns d's node paths grouped by node kind, memoized per
// state. Rollout samplers draw (rule, node) candidates from these pools on
// every walk step; without memoization each step re-walks the tree and
// re-allocates every path. All paths share one exactly-sized backing array,
// so building the pools costs a handful of allocations, not one per node.
func (e *Engine) PathPools(d *difftree.Node) [4][]difftree.Path {
	h := difftree.Hash(d)
	var k uint64
	if e.cache != nil {
		k = e.key(h)
		if v, ok := e.cache.Probe(k); ok && v.HasPools {
			e.cache.Count(true)
			return v.Pools
		}
		e.cache.Count(false)
	}
	var counts [4]int
	total := 0
	difftree.WalkPath(d, func(n *difftree.Node, p difftree.Path) bool {
		counts[n.Kind]++
		total += len(p)
		return true
	})
	var pools [4][]difftree.Path
	for kind, c := range counts {
		if c > 0 {
			pools[kind] = make([]difftree.Path, 0, c)
		}
	}
	flat := make([]int, 0, total) // exact capacity: subslices stay valid
	difftree.WalkPath(d, func(n *difftree.Node, p difftree.Path) bool {
		off := len(flat)
		flat = append(flat, p...)
		pools[n.Kind] = append(pools[n.Kind], difftree.Path(flat[off:len(flat):len(flat)]))
		return true
	})
	if e.cache != nil {
		e.cache.SetPools(k, pools)
	}
	return pools
}

// Neighbors applies every legal move of d, returning the successor states
// in the same deterministic order as Moves.
func (e *Engine) Neighbors(d *difftree.Node) []*difftree.Node {
	ms := e.Moves(d)
	out := make([]*difftree.Node, 0, len(ms))
	for _, m := range ms {
		next, err := rules.ApplyMove(d, m)
		if err != nil {
			continue
		}
		out = append(out, next)
	}
	return out
}
