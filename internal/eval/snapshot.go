package eval

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"repro/internal/ast"
)

// Cache snapshots make the warm transposition cache portable: because state
// evaluation is a pure function of (config, state) and every key mixes the
// configuration fingerprint, a cost or legality entry computed by one
// process is bit-identical to what any other process running the same code
// would compute — so a snapshot shipped to a fresh replica, or reloaded
// after a restart, answers from the first request at warm speed without
// ever being able to change a result.
//
// Only the *value* aspects travel: cost and legality. Move sets and path
// pools hold process-local pointers (rule closures, shared path arenas) and
// are recomputed on first visit — cheaply, since the legality verdicts the
// move enumeration drains through are already warm.
//
// Binary format, version 1 (all integers little-endian):
//
//	magic   [8]byte "mcuisnp1"        version is part of the magic
//	─ the region below is covered by the trailing checksum ─
//	kinds   u16 count, then per kind: u8 len + name bytes
//	fps     u32 count, then u64 per fingerprint (sorted inventory)
//	blocks  u32 count, then per block: u32 entries, then per entry:
//	          key u64, flags u8, cost f64 (present iff flags&snapHasCost)
//	─ end of checksummed region ─
//	sum     u64 FNV-64a of the checksummed region
//
// The kind table is the ast.Kind-numbering guard: LoadSnapshot verifies
// that every kind the snapshot was built against still maps to the same
// number and name. Appending new kinds keeps old snapshots loadable (the
// hashes they embed are unchanged); renumbering, renaming, or loading a
// snapshot from a *newer* grammar is rejected with ErrSnapshotSchema
// instead of importing entries whose keys silently mean something else.
const snapMagic = "mcuisnp1"

// Entry flag bits. An exported entry always carries at least one aspect.
const (
	snapHasCost  = 1 << 0 // cost field present and valid
	snapHasLegal = 1 << 1 // legality verdict known
	snapLegal    = 1 << 2 // the verdict (meaningful only with snapHasLegal)

	snapFlagsMask = snapHasCost | snapHasLegal | snapLegal
)

// Sanity bounds on header counts: far above anything a real snapshot
// carries, low enough that corrupt headers fail fast instead of looping.
const (
	snapMaxKinds        = 1 << 8
	snapMaxFingerprints = 1 << 20
	snapMaxBlocks       = 1 << 16
)

var (
	// ErrSnapshotFormat reports bytes that are not a well-formed snapshot:
	// wrong magic, truncation, checksum mismatch, or corrupt structure.
	ErrSnapshotFormat = errors.New("malformed cache snapshot")
	// ErrSnapshotSchema reports a well-formed snapshot this build cannot
	// honor: its ast.Kind numbering (or grammar generation) differs, so its
	// keys would not mean what they meant when it was written.
	ErrSnapshotSchema = errors.New("incompatible cache snapshot")
)

// snapEntry is one exported entry, also the scratch row for the
// verify-before-insert import path.
type snapEntry struct {
	key   uint64
	cost  float64
	flags uint8
}

// Snapshot writes the cache's persistable aspects (cost + legality) to w
// and returns the number of entries exported. Safe to call concurrently
// with searches: shards are copied out one at a time under their own locks,
// so the snapshot is a consistent-per-entry view of a moving cache — which
// is all determinism requires, since every entry is independently correct.
func (c *Cache) Snapshot(w io.Writer) (entries int64, err error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	mw := io.MultiWriter(bw, h)
	var scratch [8]byte
	writeU := func(v uint64, n int) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := mw.Write(scratch[:n])
		return err
	}

	names := ast.KindNames()
	if err := writeU(uint64(len(names)), 2); err != nil {
		return 0, err
	}
	for _, name := range names {
		if err := writeU(uint64(len(name)), 1); err != nil {
			return 0, err
		}
		if _, err := io.WriteString(mw, name); err != nil {
			return 0, err
		}
	}

	fps := c.Fingerprints()
	if err := writeU(uint64(len(fps)), 4); err != nil {
		return 0, err
	}
	for _, fp := range fps {
		if err := writeU(fp, 8); err != nil {
			return 0, err
		}
	}

	if err := writeU(shardCount, 4); err != nil {
		return 0, err
	}
	var rows []snapEntry
	for i := range c.shards {
		s := &c.shards[i]
		rows = rows[:0]
		s.mu.Lock()
		for j := range s.ring {
			sl := &s.ring[j]
			var flags uint8
			if sl.e.hasCost {
				flags |= snapHasCost
			}
			if sl.e.legal != 0 {
				flags |= snapHasLegal
				if sl.e.legal == 1 {
					flags |= snapLegal
				}
			}
			if flags == 0 {
				continue // moves/pools-only entry: nothing portable
			}
			rows = append(rows, snapEntry{key: sl.key, cost: sl.e.cost, flags: flags})
		}
		s.mu.Unlock()
		// Written after the shard unlocks: a stalled writer (slow disk, slow
		// HTTP client) must not hold up searches using this shard.
		if err := writeU(uint64(len(rows)), 4); err != nil {
			return 0, err
		}
		for _, r := range rows {
			if err := writeU(r.key, 8); err != nil {
				return 0, err
			}
			if err := writeU(uint64(r.flags), 1); err != nil {
				return 0, err
			}
			if r.flags&snapHasCost != 0 {
				if err := writeU(math.Float64bits(r.cost), 8); err != nil {
					return 0, err
				}
			}
		}
		entries += int64(len(rows))
	}

	binary.LittleEndian.PutUint64(scratch[:], h.Sum64())
	if _, err := bw.Write(scratch[:]); err != nil { // trailer, not hashed
		return 0, err
	}
	return entries, bw.Flush()
}

// LoadSnapshot reads a snapshot from r and merges its entries into the
// cache, returning the number of entries imported. The whole stream is
// parsed and checksum-verified *before* the first insert, so a truncated or
// corrupt snapshot can never plant garbage in a live cache — it returns
// ErrSnapshotFormat (or ErrSnapshotSchema for a kind-numbering mismatch)
// and leaves the cache untouched. Importing merges first-write-wins per
// aspect: importing twice is a no-op, and entries a live search has already
// populated are never clobbered. Importing into a cache smaller than the
// snapshot admits entries through the normal CLOCK eviction path, so
// occupancy never exceeds capacity.
func (c *Cache) LoadSnapshot(r io.Reader) (int64, error) {
	rows, fps, err := parseSnapshot(r)
	if err != nil {
		return 0, err
	}
	for _, fp := range fps {
		c.noteFingerprint(fp)
	}
	for _, row := range rows {
		var legal uint8
		if row.flags&snapHasLegal != 0 {
			legal = 2
			if row.flags&snapLegal != 0 {
				legal = 1
			}
		}
		c.importEntry(row.key, row.cost, row.flags&snapHasCost != 0, legal)
	}
	return int64(len(rows)), nil
}

// parseSnapshot decodes and fully validates a snapshot stream without
// touching any cache state.
func parseSnapshot(r io.Reader) ([]snapEntry, []uint64, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: reading magic: %w", ErrSnapshotFormat, err)
	}
	if string(magic[:]) != snapMagic {
		return nil, nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrSnapshotFormat, magic[:], snapMagic)
	}

	h := fnv.New64a()
	hr := io.TeeReader(br, h)
	var scratch [8]byte
	readU := func(n int) (uint64, error) {
		scratch = [8]byte{}
		if _, err := io.ReadFull(hr, scratch[:n]); err != nil {
			return 0, fmt.Errorf("%w: truncated: %w", ErrSnapshotFormat, err)
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}

	kindCount, err := readU(2)
	if err != nil {
		return nil, nil, err
	}
	if kindCount == 0 || kindCount > snapMaxKinds {
		return nil, nil, fmt.Errorf("%w: implausible kind count %d", ErrSnapshotFormat, kindCount)
	}
	names := ast.KindNames()
	if int(kindCount) > len(names) {
		return nil, nil, fmt.Errorf("%w: snapshot knows %d grammar kinds, this build %d — written by a newer grammar",
			ErrSnapshotSchema, kindCount, len(names))
	}
	for i := 0; i < int(kindCount); i++ {
		nameLen, err := readU(1)
		if err != nil {
			return nil, nil, err
		}
		buf := make([]byte, nameLen)
		if _, err := io.ReadFull(hr, buf); err != nil {
			return nil, nil, fmt.Errorf("%w: truncated kind table: %w", ErrSnapshotFormat, err)
		}
		if string(buf) != names[i] {
			return nil, nil, fmt.Errorf("%w: grammar kind %d is %q in the snapshot but %q in this build — kind numbering changed",
				ErrSnapshotSchema, i, buf, names[i])
		}
	}

	fpCount, err := readU(4)
	if err != nil {
		return nil, nil, err
	}
	if fpCount > snapMaxFingerprints {
		return nil, nil, fmt.Errorf("%w: implausible fingerprint count %d", ErrSnapshotFormat, fpCount)
	}
	fps := make([]uint64, fpCount)
	for i := range fps {
		if fps[i], err = readU(8); err != nil {
			return nil, nil, err
		}
	}

	blockCount, err := readU(4)
	if err != nil {
		return nil, nil, err
	}
	if blockCount > snapMaxBlocks {
		return nil, nil, fmt.Errorf("%w: implausible block count %d", ErrSnapshotFormat, blockCount)
	}
	var rows []snapEntry
	for b := uint64(0); b < blockCount; b++ {
		n, err := readU(4)
		if err != nil {
			return nil, nil, err
		}
		for i := uint64(0); i < n; i++ {
			key, err := readU(8)
			if err != nil {
				return nil, nil, err
			}
			fl, err := readU(1)
			if err != nil {
				return nil, nil, err
			}
			flags := uint8(fl)
			if flags&^uint8(snapFlagsMask) != 0 {
				return nil, nil, fmt.Errorf("%w: unknown entry flags %#x", ErrSnapshotFormat, flags)
			}
			if flags&(snapHasCost|snapHasLegal) == 0 {
				return nil, nil, fmt.Errorf("%w: entry carries no aspect", ErrSnapshotFormat)
			}
			if flags&snapLegal != 0 && flags&snapHasLegal == 0 {
				return nil, nil, fmt.Errorf("%w: legal bit without a verdict", ErrSnapshotFormat)
			}
			var cost float64
			if flags&snapHasCost != 0 {
				bits, err := readU(8)
				if err != nil {
					return nil, nil, err
				}
				cost = math.Float64frombits(bits)
			}
			rows = append(rows, snapEntry{key: key, cost: cost, flags: flags})
		}
	}

	want := h.Sum64()
	if _, err := io.ReadFull(br, scratch[:8]); err != nil {
		return nil, nil, fmt.Errorf("%w: truncated checksum: %w", ErrSnapshotFormat, err)
	}
	if got := binary.LittleEndian.Uint64(scratch[:8]); got != want {
		return nil, nil, fmt.Errorf("%w: checksum mismatch (%#x != %#x)", ErrSnapshotFormat, got, want)
	}
	return rows, fps, nil
}

// SaveSnapshotFile writes the cache snapshot to path crash-safely: the
// bytes land in a temporary sibling file which is fsynced and then renamed
// over path, so a crash mid-write leaves the previous snapshot intact and a
// reader can never observe a half-written file.
func SaveSnapshotFile(c *Cache, path string) (entries int64, err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	entries, err = c.Snapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return entries, nil
}

// LoadSnapshotFile merges the snapshot at path into the cache; see
// Cache.LoadSnapshot for the validation and merge semantics.
func LoadSnapshotFile(c *Cache, path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return c.LoadSnapshot(f)
}
