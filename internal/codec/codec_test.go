package codec

import (
	"strings"
	"testing"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/sqlparser"
	"repro/internal/widgets"
	"repro/internal/workload"
)

func figure4Tree() *difftree.Node {
	return difftree.NewAll(ast.KindSelect, "",
		difftree.NewAll(ast.KindProject, "",
			difftree.NewAny(
				difftree.NewAll(ast.KindColExpr, "Sales"),
				difftree.NewAll(ast.KindColExpr, "Costs"))),
		difftree.NewAll(ast.KindFrom, "", difftree.NewAll(ast.KindTable, "sales")),
		difftree.NewOpt(difftree.NewAll(ast.KindWhere, "",
			difftree.NewAll(ast.KindBiExpr, "=",
				difftree.NewAll(ast.KindColExpr, "cty"),
				difftree.NewAny(
					difftree.NewAll(ast.KindStrExpr, "USA"),
					difftree.NewAll(ast.KindStrExpr, "EUR"))))))
}

func TestDiffTreeRoundTrip(t *testing.T) {
	trees := []*difftree.Node{
		figure4Tree(),
		difftree.NewAny(difftree.Emptyn(), difftree.NewAll(ast.KindColExpr, "a")),
		difftree.NewAll(ast.KindAnd, "",
			difftree.NewMulti(difftree.NewAll(ast.KindBetween, "",
				difftree.NewAll(ast.KindColExpr, "u"),
				difftree.NewAll(ast.KindNumExpr, "0"),
				difftree.NewAll(ast.KindNumExpr, "30")))),
		difftree.NewAll(ast.KindSeq, "",
			difftree.NewAll(ast.KindColExpr, "a"),
			difftree.NewAll(ast.KindColExpr, "b")),
	}
	for i, d := range trees {
		// Seq roots are internal-only; Validate may reject a bare Seq, so
		// only fully valid trees round trip through DecodeDiffTree.
		back, err := DecodeDiffTree(EncodeDiffTree(d))
		if err != nil {
			if difftree.Validate(d) != nil {
				continue // invalid on purpose
			}
			t.Fatalf("tree %d: %v", i, err)
		}
		if !difftree.Equal(d, back) {
			t.Errorf("tree %d changed:\n in: %s\nout: %s", i, d, back)
		}
	}
}

func TestDecodeRejectsJunk(t *testing.T) {
	bad := []*DiffTreeJSON{
		nil,
		{Kind: "WAT"},
		{Kind: "ALL", Label: "NotARule"},
		{Kind: "OPT"}, // no child
		{Kind: "ANY"}, // no children
		{Kind: "MULTI", Children: []*DiffTreeJSON{{Kind: "OPT", Children: []*DiffTreeJSON{{Kind: "ALL", Label: "ColExpr"}}}}}, // nullable MULTI child
	}
	for i, j := range bad {
		if _, err := DecodeDiffTree(j); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestInterfaceBundleRoundTrip(t *testing.T) {
	log := workload.PaperFigure1Log()
	d := figure4Tree()
	if !difftree.ExpressibleAll(d, log) {
		t.Fatal("fixture broken")
	}
	plan, err := assign.BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	ui := plan.First()

	var queries []string
	for _, q := range log {
		queries = append(queries, sqlparser.Render(q))
	}
	data, err := Marshal(d, ui, queries)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"version\": 1") {
		t.Error("version missing from bundle")
	}

	d2, ui2, qs2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !difftree.Equal(d, d2) {
		t.Error("difftree changed")
	}
	if len(qs2) != len(queries) {
		t.Error("queries lost")
	}
	if ui2.CountWidgets() != ui.CountWidgets() {
		t.Errorf("widgets: %d vs %d", ui2.CountWidgets(), ui.CountWidgets())
	}

	// The decoded interface evaluates identically under the cost model.
	model := cost.Default(layout.Wide)
	a := model.Evaluate(d, ui, log)
	b := model.Evaluate(d2, ui2, log)
	if a.Total() != b.Total() || a.M != b.M || a.U != b.U {
		t.Errorf("cost drift after round trip: %+v vs %+v", a, b)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, _, err := Unmarshal([]byte("{")); err == nil {
		t.Error("bad json")
	}
	if _, _, _, err := Unmarshal([]byte(`{"version": 99, "difftree": {"kind":"ALL","label":"Select"}}`)); err == nil {
		t.Error("unknown version")
	}
	if _, _, _, err := Unmarshal([]byte(`{"version": 1}`)); err == nil {
		t.Error("missing difftree")
	}
	if _, _, _, err := Unmarshal([]byte(`{"version": 1, "difftree": {"kind":"ALL","label":"Table","value":"t"}, "ui": {"type":"wat"}}`)); err == nil {
		t.Error("unknown widget type")
	}
	if _, _, _, err := Unmarshal([]byte(`{"version": 1, "difftree": {"kind":"ALL","label":"Table","value":"t"}, "ui": {"type":"dropdown","choice":99}}`)); err == nil {
		t.Error("choice index out of range")
	}
}

func TestNilHandling(t *testing.T) {
	if EncodeDiffTree(nil) != nil {
		t.Error("nil encode")
	}
	uj, err := EncodeUI(nil, figure4Tree())
	if err != nil || uj != nil {
		t.Error("nil ui encode")
	}
	un, err := DecodeUI(nil, figure4Tree())
	if err != nil || un != nil {
		t.Error("nil ui decode")
	}
}

func TestEncodeUIRejectsForeignChoice(t *testing.T) {
	d := figure4Tree()
	foreign := difftree.NewAny(difftree.Emptyn(), difftree.Emptyn())
	ui := layout.NewWidget(widgets.Dropdown, widgets.Domain{}, foreign)
	if _, err := EncodeUI(ui, d); err == nil {
		t.Error("foreign choice must fail")
	}
}
