package codec

import (
	"testing"

	"repro/internal/assign"
	"repro/internal/difftree"
)

// FuzzUnmarshal is the daemon's deserialization wall: /v1/sessions/{id}/import
// feeds attacker-controlled bytes straight into Unmarshal, so malformed
// persisted interfaces must produce an error — never a panic, out-of-range
// index, or structurally invalid tree. Accepted inputs must also re-marshal
// (the export of an imported session cannot fail).
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: a real persisted interface (difftree + widget tree +
	// query log), a difftree-only bundle, and near-miss malformed variants
	// of each failure class the decoder guards.
	tree := figure4Tree()
	plan, err := assign.BuildPlan(tree)
	if err != nil {
		f.Fatal(err)
	}
	full, err := Marshal(tree, plan.First(), []string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"SELECT Costs FROM sales",
	})
	if err != nil {
		f.Fatal(err)
	}
	bare, err := Marshal(tree, nil, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range [][]byte{
		full,
		bare,
		[]byte(`{}`),
		[]byte(`{"version":99,"difftree":{"kind":"ALL","label":"Select"}}`),
		[]byte(`{"version":1,"difftree":{"kind":"WAT"}}`),
		[]byte(`{"version":1,"difftree":{"kind":"ALL","label":"NotALabel"}}`),
		[]byte(`{"version":1,"difftree":{"kind":"OPT"}}`),
		[]byte(`{"version":1,"difftree":{"kind":"ALL","label":"Select"},"ui":{"type":"vbox","children":[{"type":"dropdown","choice":42}]}}`),
		[]byte(`{"version":1,"difftree":{"kind":"ALL","label":"Select"},"ui":{"type":"hologram"}}`),
		[]byte(`not json at all`),
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		diff, ui, queries, err := Unmarshal(data)
		if err != nil {
			return // rejecting malformed bytes is the contract
		}
		// Accepted trees must satisfy the structural invariants the rest of
		// the system assumes.
		if err := difftree.Validate(diff); err != nil {
			t.Fatalf("Unmarshal accepted an invalid difftree: %v\ninput: %s", err, data)
		}
		// And the bundle must survive a re-marshal round trip.
		again, err := Marshal(diff, ui, queries)
		if err != nil {
			t.Fatalf("accepted bundle does not re-marshal: %v\ninput: %s", err, data)
		}
		diff2, _, _, err := Unmarshal(again)
		if err != nil {
			t.Fatalf("re-marshaled bundle does not decode: %v", err)
		}
		if !difftree.Equal(diff, diff2) {
			t.Fatalf("difftree changed across marshal round trip:\n in: %s\nout: %s", diff, diff2)
		}
	})
}
