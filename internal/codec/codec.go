// Package codec serializes difftrees and widget trees to JSON so generated
// interfaces can be saved, versioned, and reloaded without re-running the
// search (a practical necessity for a tool whose searches take a minute).
package codec

import (
	"encoding/json"
	"fmt"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/widgets"
)

// Version is embedded in every encoded artifact; decoding rejects unknown
// versions.
const Version = 1

// DiffTreeJSON is the wire form of a difftree node.
type DiffTreeJSON struct {
	Kind     string          `json:"kind"`            // ALL | ANY | OPT | MULTI
	Label    string          `json:"label,omitempty"` // grammar rule for ALL nodes
	Value    string          `json:"value,omitempty"`
	Children []*DiffTreeJSON `json:"children,omitempty"`
}

// WidgetJSON is the wire form of a widget-tree node. Choice nodes are
// referenced by their pre-order index in the difftree.
type WidgetJSON struct {
	Type     string        `json:"type"`
	Title    string        `json:"title,omitempty"`
	Options  []string      `json:"options,omitempty"`
	Choice   *int          `json:"choice,omitempty"` // difftree pre-order index
	Children []*WidgetJSON `json:"children,omitempty"`
}

// InterfaceJSON bundles a generated interface.
type InterfaceJSON struct {
	Version  int           `json:"version"`
	Queries  []string      `json:"queries,omitempty"` // the input log (rendered SQL)
	DiffTree *DiffTreeJSON `json:"difftree"`
	UI       *WidgetJSON   `json:"ui,omitempty"`
}

// EncodeDiffTree converts a difftree to its wire form.
func EncodeDiffTree(n *difftree.Node) *DiffTreeJSON {
	if n == nil {
		return nil
	}
	out := &DiffTreeJSON{Kind: n.Kind.String(), Value: n.Value}
	if n.Kind == difftree.All {
		out.Label = n.Label.String()
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, EncodeDiffTree(c))
	}
	return out
}

// kindByName inverts difftree.Kind.String.
var kindByName = map[string]difftree.Kind{
	"ALL": difftree.All, "ANY": difftree.Any, "OPT": difftree.Opt, "MULTI": difftree.Multi,
}

// labelByName inverts ast.Kind.String for all valid grammar kinds.
var labelByName = func() map[string]ast.Kind {
	m := make(map[string]ast.Kind)
	for k := ast.Kind(1); ; k++ {
		if !k.Valid() {
			break
		}
		m[k.String()] = k
	}
	return m
}()

// DecodeDiffTree converts the wire form back to a difftree and validates it.
func DecodeDiffTree(j *DiffTreeJSON) (*difftree.Node, error) {
	n, err := decodeDiffNode(j)
	if err != nil {
		return nil, err
	}
	if err := difftree.Validate(n); err != nil {
		return nil, err
	}
	return n, nil
}

func decodeDiffNode(j *DiffTreeJSON) (*difftree.Node, error) {
	if j == nil {
		return nil, fmt.Errorf("codec: nil difftree node")
	}
	kind, ok := kindByName[j.Kind]
	if !ok {
		return nil, fmt.Errorf("codec: unknown difftree kind %q", j.Kind)
	}
	n := &difftree.Node{Kind: kind, Value: j.Value}
	if kind == difftree.All {
		label, ok := labelByName[j.Label]
		if !ok {
			return nil, fmt.Errorf("codec: unknown grammar label %q", j.Label)
		}
		n.Label = label
	}
	for _, c := range j.Children {
		child, err := decodeDiffNode(c)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	return n, nil
}

// preorderIndex maps each difftree node to its pre-order position.
func preorderIndex(root *difftree.Node) (map[*difftree.Node]int, []*difftree.Node) {
	byNode := make(map[*difftree.Node]int)
	var byIndex []*difftree.Node
	difftree.WalkPath(root, func(n *difftree.Node, _ difftree.Path) bool {
		byNode[n] = len(byIndex)
		byIndex = append(byIndex, n)
		return true
	})
	return byNode, byIndex
}

// EncodeUI converts a widget tree to wire form, resolving choice pointers
// against the difftree.
func EncodeUI(ui *layout.Node, diff *difftree.Node) (*WidgetJSON, error) {
	if ui == nil {
		return nil, nil
	}
	idx, _ := preorderIndex(diff)
	return encodeWidget(ui, idx)
}

func encodeWidget(n *layout.Node, idx map[*difftree.Node]int) (*WidgetJSON, error) {
	out := &WidgetJSON{Type: n.Type.String(), Title: n.Title, Options: n.Domain.Options}
	if n.Choice != nil {
		i, ok := idx[n.Choice]
		if !ok {
			return nil, fmt.Errorf("codec: widget references a node outside the difftree")
		}
		out.Choice = &i
	}
	for _, c := range n.Children {
		cj, err := encodeWidget(c, idx)
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, cj)
	}
	return out, nil
}

// typeByName inverts widgets.Type.String.
var typeByName = func() map[string]widgets.Type {
	m := make(map[string]widgets.Type)
	for t := widgets.Label; t <= widgets.Adder; t++ {
		m[t.String()] = t
	}
	return m
}()

// DecodeUI rebuilds a widget tree against a decoded difftree, recomputing
// each widget's domain from its choice node (domains are derived data, so
// the decoded tree evaluates identically under the cost model).
func DecodeUI(j *WidgetJSON, diff *difftree.Node) (*layout.Node, error) {
	if j == nil {
		return nil, nil
	}
	_, byIndex := preorderIndex(diff)
	parents := parentIndex(diff)
	return decodeWidget(j, byIndex, parents)
}

// parentIndex maps each difftree node to its parent.
func parentIndex(root *difftree.Node) map[*difftree.Node]*difftree.Node {
	m := make(map[*difftree.Node]*difftree.Node)
	var rec func(n *difftree.Node)
	rec = func(n *difftree.Node) {
		for _, c := range n.Children {
			m[c] = n
			rec(c)
		}
	}
	rec(root)
	return m
}

func decodeWidget(j *WidgetJSON, byIndex []*difftree.Node, parents map[*difftree.Node]*difftree.Node) (*layout.Node, error) {
	t, ok := typeByName[j.Type]
	if !ok {
		return nil, fmt.Errorf("codec: unknown widget type %q", j.Type)
	}
	n := &layout.Node{Type: t, Title: j.Title}
	n.Domain.Options = j.Options
	if j.Choice != nil {
		if *j.Choice < 0 || *j.Choice >= len(byIndex) {
			return nil, fmt.Errorf("codec: choice index %d out of range", *j.Choice)
		}
		n.Choice = byIndex[*j.Choice]
		n.Domain = assign.DomainOf(n.Choice, parents[n.Choice])
		if n.Title == "" {
			n.Title = n.Domain.Title
		}
	}
	for _, c := range j.Children {
		child, err := decodeWidget(c, byIndex, parents)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	return n, nil
}

// Marshal serializes an interface bundle.
func Marshal(diff *difftree.Node, ui *layout.Node, queries []string) ([]byte, error) {
	uj, err := EncodeUI(ui, diff)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(InterfaceJSON{
		Version:  Version,
		Queries:  queries,
		DiffTree: EncodeDiffTree(diff),
		UI:       uj,
	}, "", "  ")
}

// Unmarshal deserializes an interface bundle.
func Unmarshal(data []byte) (*difftree.Node, *layout.Node, []string, error) {
	var j InterfaceJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, nil, nil, err
	}
	if j.Version != Version {
		return nil, nil, nil, fmt.Errorf("codec: unsupported version %d", j.Version)
	}
	diff, err := DecodeDiffTree(j.DiffTree)
	if err != nil {
		return nil, nil, nil, err
	}
	ui, err := DecodeUI(j.UI, diff)
	if err != nil {
		return nil, nil, nil, err
	}
	return diff, ui, j.Queries, nil
}
