// Package mctsui generates interactive data-analysis interfaces from SQL
// query logs using Monte Carlo Tree Search, reproducing Chen & Wu,
// "Monte Carlo Tree Search for Generating Interactive Data Analysis
// Interfaces" (2020).
//
// Given a sequence of SQL queries that are part of an analysis task, the
// library extracts their syntactic differences into a difftree, searches the
// space of difftree transformations with MCTS, and returns the lowest-cost
// interactive interface: a hierarchy of layout widgets (vertical/horizontal
// boxes, tabs, adders) and interaction widgets (dropdowns, radio buttons,
// sliders, toggles, ...) that can express every query in the log — and
// usually a generalization of them.
//
// The entry point is the Generator, an anytime, context-aware engine:
//
//	gen := mctsui.New(
//	    mctsui.WithScreen(mctsui.WideScreen),
//	    mctsui.WithTimeBudget(time.Minute),            // the paper's budget
//	    mctsui.WithProgress(func(p mctsui.Progress) {  // best-so-far snapshots
//	        fmt.Printf("iter %d: cost %.2f\n", p.Iterations, p.BestCost)
//	    }),
//	)
//	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
//	defer cancel()
//	iface, err := gen.Generate(ctx, []string{
//	    "SELECT Sales FROM sales WHERE cty = USA",
//	    "SELECT Costs FROM sales WHERE cty = EUR",
//	    "SELECT Costs FROM sales",
//	})
//	if err != nil { ... }
//	fmt.Println(iface.ASCII())      // render the widget tree
//	sess := iface.NewSession()      // drive it interactively
//	fmt.Println(sess.SQL())         // the current query
//
// Cancelling the context (or hitting its deadline) stops the search
// promptly and yields the best interface found so far — generation never
// fails just because time ran out. WithStrategy swaps the paper's MCTS for
// beam, greedy, random, or exhaustive search, and WithWorkers runs
// root-parallel searches. The package-level Generate and GenerateFromASTs
// functions are deprecated one-shot shims over the same engine.
package mctsui

import (
	"context"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/sqlparser"
)

// Screen is the output screen constraint in layout units (≈ pixels).
type Screen = layout.Screen

// Screen presets matching the paper's Figure 6(a) and 6(b).
var (
	WideScreen   = layout.Wide
	NarrowScreen = layout.Narrow
)

// Config tunes the deprecated one-shot Generate/GenerateFromASTs shims.
// The zero value uses wide screen, UCT with c = √2, rollouts up to
// DefaultRolloutDepth steps, DefaultRewardSamples random widget assignments
// per reward, and DefaultIterations search iterations (all defined once in
// the engine and re-exported by this package).
//
// Deprecated: configure a Generator with functional options instead —
// mctsui.New(mctsui.WithScreen(...), ...).
type Config struct {
	// Screen is the output constraint; interfaces that do not fit are
	// discarded as invalid. Default WideScreen.
	Screen Screen
	// Iterations bounds the MCTS iteration count. Default 60.
	Iterations int
	// TimeBudget, when set, bounds wall-clock search time instead (the
	// paper runs ~1 minute per interface).
	TimeBudget time.Duration
	// Seed makes generation deterministic. Default 1.
	Seed int64
	// RolloutDepth bounds random walks during search. The paper allows up
	// to 200; the default of 16 already saturates quality on the paper's
	// logs (see the rollout-depth ablation in EXPERIMENTS.md).
	RolloutDepth int
	// RewardSamples is k, the random widget assignments scored per state.
	// Default 5.
	RewardSamples int
	// ExplorationC is the UCT exploration constant. Default √2.
	ExplorationC float64
	// Workers > 1 runs that many independent searches in parallel with
	// distinct seeds and keeps the best interface (root parallelization,
	// the paper's suggested optimization for interactive run-times).
	Workers int
}

// Interface is a generated interactive interface.
type Interface struct {
	res     *core.Result
	cooccur map[pairKey]bool // lazily built log co-occurrence index
}

// options converts the legacy Config into Generator options.
func (c Config) options() []Option {
	return []Option{
		WithScreen(c.Screen),
		WithIterations(c.Iterations),
		WithTimeBudget(c.TimeBudget),
		WithSeed(c.Seed),
		WithRolloutDepth(c.RolloutDepth),
		WithRewardSamples(c.RewardSamples),
		WithExplorationC(c.ExplorationC),
		WithWorkers(c.Workers),
	}
}

// Generate parses the query log (one SQL string per entry) and runs the
// full pipeline.
//
// Deprecated: Generate is the v0 blocking one-shot call. Use the
// context-aware Generator — New(opts...).Generate(ctx, queries) — which
// adds cancellation, deadlines, progress snapshots, and pluggable search
// strategies. This shim is equivalent to
// New(cfg options...).Generate(context.Background(), queries).
func Generate(queries []string, cfg Config) (*Interface, error) {
	return New(cfg.options()...).Generate(context.Background(), queries)
}

// GenerateFromASTs runs the pipeline on pre-parsed queries (see the
// internal/sqlparser and internal/workload packages).
//
// Deprecated: use New(opts...).GenerateFromASTs(ctx, log) for the same
// reasons as Generate.
func GenerateFromASTs(log []*ast.Node, cfg Config) (*Interface, error) {
	return New(cfg.options()...).GenerateFromASTs(context.Background(), log)
}

// Cost returns the interface's total cost C(W,Q); +Inf if no valid
// interface was found.
func (f *Interface) Cost() float64 { return f.res.Cost.Total() }

// CostBreakdown returns (M, U): widget appropriateness and transition
// effort.
func (f *Interface) CostBreakdown() (m, u float64) { return f.res.Cost.M, f.res.Cost.U }

// Valid reports whether a screen-fitting interface expressing every log
// query was found.
func (f *Interface) Valid() bool { return f.res.Cost.Valid }

// NumWidgets returns the number of interaction widgets.
func (f *Interface) NumWidgets() int { return f.res.Cost.Widgets }

// Bounds returns the interface bounding box (width, height).
func (f *Interface) Bounds() (w, h int) {
	return f.res.Cost.Bounds.W, f.res.Cost.Bounds.H
}

// ASCII renders the widget tree as text.
func (f *Interface) ASCII() string {
	if f.res.UI == nil {
		return "(static interface: the log contains a single distinct query)\n"
	}
	return layout.RenderASCII(f.res.UI)
}

// HTML renders the widget tree as an HTML fragment.
func (f *Interface) HTML() string {
	if f.res.UI == nil {
		return "<div class=\"generated-interface\"></div>\n"
	}
	return layout.RenderHTML(f.res.UI)
}

// DiffTree renders the underlying difftree in the paper's notation.
func (f *Interface) DiffTree() string { return f.res.DiffTree.String() }

// Describe summarizes the interface and its search statistics in one line.
func (f *Interface) Describe() string { return f.res.Describe() }

// Stats exposes the final search diagnostics: strategy, iteration and
// evaluation counters, whether the search was interrupted by its context,
// the best-so-far cost trajectory (Stats.Trajectory, monotone
// non-increasing in cost), and the evaluation engine's transposition-cache
// metrics (Stats.CacheHits / CacheMisses / CacheHitRate — zero when the
// cache was disabled with WithoutCache).
func (f *Interface) Stats() Stats { return f.res.Stats }

// SearchStats exposes the search diagnostics.
//
// Deprecated: use Stats.
func (f *Interface) SearchStats() Stats { return f.res.Stats }

// SearchTree returns the MCTS search tree this generation persisted, for
// feeding back through WithSearchTree on the next generation over an
// appended log (see that option for the re-rooting contract). It is nil
// unless the interface came from a sequential (TreeWorkers <= 1) MCTS
// search.
func (f *Interface) SearchTree() *SearchTree {
	if f.res.SearchTree == nil {
		return nil
	}
	return &SearchTree{t: f.res.SearchTree}
}

// InitialCost returns the best cost achievable at the unsearched initial
// state (the paper's Figure 2(a)-style interface); the gap to Cost()
// measures what the search bought.
func (f *Interface) InitialCost() float64 { return f.res.Initial.Total() }

// Queries enumerates up to limit distinct SQL queries the interface can
// express — typically a superset of the input log.
func (f *Interface) Queries(limit int) []string {
	qs := difftree.EnumerateQueries(f.res.DiffTree, limit, 4)
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = sqlparser.Render(q)
	}
	return out
}

// CanExpress reports whether the interface can express the given SQL query.
func (f *Interface) CanExpress(query string) (bool, error) {
	q, err := sqlparser.Parse(query)
	if err != nil {
		return false, err
	}
	return difftree.Expressible(f.res.DiffTree, q), nil
}
