package mctsui

import (
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// fastCfg keeps test searches quick and deterministic.
func fastCfg() Config {
	return Config{Iterations: 10, RolloutDepth: 6, RewardSamples: 3, Seed: 1}
}

var paperLog = []string{
	"SELECT Sales FROM sales WHERE cty = USA",
	"SELECT Costs FROM sales WHERE cty = EUR",
	"SELECT Costs FROM sales",
}

func TestGeneratePaperExample(t *testing.T) {
	iface, err := Generate(paperLog, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !iface.Valid() {
		t.Fatal("invalid interface")
	}
	if iface.NumWidgets() == 0 {
		t.Error("no widgets")
	}
	if math.IsInf(iface.Cost(), 1) {
		t.Error("infinite cost")
	}
	m, u := iface.CostBreakdown()
	if m+u != iface.Cost() {
		t.Error("breakdown mismatch")
	}
	w, h := iface.Bounds()
	if w <= 0 || h <= 0 {
		t.Error("empty bounds")
	}
	if !strings.Contains(iface.ASCII(), "(") {
		t.Error("ASCII render empty")
	}
	if !strings.Contains(iface.HTML(), "generated-interface") {
		t.Error("HTML render empty")
	}
	if iface.DiffTree() == "" || iface.Describe() == "" {
		t.Error("descriptions empty")
	}
	if iface.SearchStats().Iterations != 10 {
		t.Errorf("stats: %+v", iface.SearchStats())
	}
	if iface.InitialCost() < iface.Cost() {
		t.Error("final cost must not exceed initial")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, Config{}); err == nil {
		t.Error("empty log")
	}
	if _, err := Generate([]string{"not sql"}, Config{}); err == nil {
		t.Error("parse error must propagate")
	}
	if _, err := Generate([]string{"select a from t", "nope"}, Config{}); err == nil {
		t.Error("second query parse error must propagate")
	} else if !strings.Contains(err.Error(), "query 2") {
		t.Errorf("error should name the query: %v", err)
	}
}

func TestQueriesAndCanExpress(t *testing.T) {
	iface, err := Generate(paperLog, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	qs := iface.Queries(100)
	if len(qs) < 3 {
		t.Fatalf("interface must express at least the log: %v", qs)
	}
	for _, src := range paperLog {
		ok, err := iface.CanExpress(src)
		if err != nil || !ok {
			t.Errorf("cannot express input query %q (%v)", src, err)
		}
	}
	if ok, _ := iface.CanExpress("SELECT Profit FROM sales"); ok {
		t.Error("phantom query expressible")
	}
	if _, err := iface.CanExpress("not sql"); err == nil {
		t.Error("parse error must propagate")
	}
	// Every enumerated query is expressible (round trip).
	for _, q := range qs[:min(len(qs), 10)] {
		ok, err := iface.CanExpress(q)
		if err != nil || !ok {
			t.Errorf("enumerated query %q not expressible", q)
		}
	}
}

func TestSessionLoadAndSQL(t *testing.T) {
	iface, err := Generate(paperLog, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	sess := iface.NewSession()
	for _, src := range paperLog {
		if err := sess.LoadQuery(src); err != nil {
			t.Fatalf("LoadQuery(%q): %v", src, err)
		}
		got, err := sess.SQL()
		if err != nil {
			t.Fatal(err)
		}
		ok, _ := iface.CanExpress(got)
		if !ok {
			t.Errorf("round-tripped SQL %q not expressible", got)
		}
		// Loading a query then rendering must reproduce it canonically.
		want := canonical(t, src)
		if got != want {
			t.Errorf("LoadQuery round trip: got %q, want %q", got, want)
		}
	}
	if err := sess.LoadQuery("SELECT Profit FROM sales"); err == nil {
		t.Error("inexpressible LoadQuery must fail")
	}
	if err := sess.LoadQuery("not sql"); err == nil {
		t.Error("unparsable LoadQuery must fail")
	}
}

func canonical(t *testing.T, src string) string {
	t.Helper()
	iface, err := Generate([]string{src}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	qs := iface.Queries(1)
	if len(qs) != 1 {
		t.Fatal("single query interface must express itself")
	}
	return qs[0]
}

func TestSessionSetWidgets(t *testing.T) {
	iface, err := Generate(paperLog, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	sess := iface.NewSession()
	ws := sess.Widgets()
	if len(ws) == 0 {
		t.Fatal("no widgets in session")
	}
	for _, w := range ws {
		if w.Type == "" {
			t.Error("widget type empty")
		}
	}
	// Changing each widget keeps the query expressible.
	for i, w := range ws {
		nOpts := len(w.Options)
		if nOpts == 0 {
			nOpts = 2 // toggle
		}
		for v := 0; v < nOpts && v < 3; v++ {
			if err := sess.Set(i, v); err != nil {
				// Toggles only accept 0/1; skip over-range.
				continue
			}
			sql, err := sess.SQL()
			if err != nil {
				t.Fatalf("widget %d=%d: %v", i, v, err)
			}
			ok, err := iface.CanExpress(sql)
			if err != nil || !ok {
				t.Errorf("widget %d=%d produced inexpressible %q", i, v, sql)
			}
		}
	}
	// Errors.
	if err := sess.Set(-1, 0); err == nil {
		t.Error("negative widget index")
	}
	if err := sess.Set(len(ws), 0); err == nil {
		t.Error("out of range widget index")
	}
	if err := sess.Set(0, 999); err == nil {
		t.Error("out of range option")
	}
}

func TestSessionExecute(t *testing.T) {
	log := workload.SDSSLogSQL()
	iface, err := Generate(log, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	sess := iface.NewSession()
	if err := sess.LoadQuery(log[0]); err != nil {
		t.Fatal(err)
	}
	db := engine.SDSSDB(200, 7)
	res, spec, err := sess.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no rows")
	}
	if len(res.Rows) > 10 {
		t.Errorf("TOP 10 violated: %d rows", len(res.Rows))
	}
	if spec.Type.String() == "" {
		t.Error("no chart recommended")
	}
	// count(*) query → big number.
	if err := sess.LoadQuery(log[3]); err != nil {
		t.Fatal(err)
	}
	_, spec2, err := sess.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.Type.String() != "big-number" {
		t.Errorf("count(*) should be big-number, got %s", spec2.Type)
	}
}

func TestSingleQueryInterface(t *testing.T) {
	iface, err := Generate([]string{"select a from t"}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if iface.NumWidgets() != 0 {
		t.Error("static interface")
	}
	if !strings.Contains(iface.ASCII(), "static") {
		t.Error("ASCII should note static interface")
	}
	if !strings.Contains(iface.HTML(), "generated-interface") {
		t.Error("HTML should still emit the container")
	}
	sess := iface.NewSession()
	sql, err := sess.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if sql != "SELECT a FROM t" {
		t.Errorf("static SQL = %q", sql)
	}
}
