package mctsui

import (
	"repro/internal/ast"
	"repro/internal/engine"
)

// engineDB builds the synthetic SDSS catalog used by the engine benchmark.
func engineDB() *engine.DB {
	return engine.SDSSDB(5000, 1)
}

// execBench runs one query for the engine benchmark.
func execBench(db *engine.DB, q *ast.Node) (*engine.Result, error) {
	return engine.Exec(db, q)
}
