GO ?= go

.PHONY: verify build vet fmt test bench bench-json golden

# verify is the tier-1 gate: build, vet, formatting, and the full test suite.
verify: build vet fmt test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# bench runs the benchmark suite once (includes BenchmarkGenerateWorkers,
# the root-parallelization scaling check).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-json regenerates BENCH_search.json: iterations/sec with the
# transposition cache cold, warm, and disabled on the SDSS workload, plus
# the cache hit rate and best cost. Fails if the warm-cache speedup drops
# below 3x or if caching changes a result.
bench-json:
	$(GO) run ./cmd/searchbench -out BENCH_search.json

# golden regenerates the end-to-end fixtures under testdata/golden/ (run it
# after an intentional change to search or cost semantics, then review the
# diff like any other code change).
golden:
	$(GO) test -run TestGoldenFixtures . -args -update-golden
