GO ?= go

.PHONY: verify build vet fmt test test-fast bench bench-allocs bench-json bench-serving bench-serving-fleet fleet load-smoke race-tree golden fuzz-smoke serve join-scenarios staticcheck mctsvet lint govulncheck

# verify is the tier-1 gate: build, formatting, static analysis (go vet +
# the custom mctsvet suite), and the full test suite. Everything in verify
# works offline; lint adds the network-fetched checkers on top.
verify: build fmt mctsvet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# test is tier-1 parity with `go test ./...`, including the ~30s serving
# soak; use test-fast while iterating.
test:
	$(GO) test ./...

# test-fast skips the 30s eviction-determinism soak (CI runs it in its own
# dedicated step).
test-fast:
	$(GO) test -skip TestSoakEvictionDeterminism ./...

# bench runs the benchmark suite once (includes BenchmarkGenerateWorkers,
# the root-parallelization scaling check).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-allocs measures allocations on the search hot path: one sequential
# MCTS Generate over the SDSS log in each cache mode (uncached / cold /
# warm), with allocs/op and B/op from -benchmem. CI runs the same command
# and archives the output next to BENCH_search.json's allocs_per_iter
# section.
bench-allocs:
	$(GO) test -run '^$$' -bench 'BenchmarkGenerate$$' -benchmem .

# bench-json regenerates BENCH_search.json: iterations/sec with the
# transposition cache cold, warm, and disabled — one section per workload
# (sdss and sdss-join) — plus the cache hit rate, best cost,
# allocations-per-iteration for every mode, each workload's snapshot
# section (restart-from-snapshot: warm cache exported through the codec and
# imported into a fresh cache before searching), and the first workload's
# tree_parallel section (4 workers on one tree vs sequential, both cold).
# Fails if any workload's warm-cache speedup drops below 3x, if a cold
# first search is slower than uncached (speedup_cold < 1.0 — every mode is
# timed fastest-of-N, cold with a fresh cache per repetition), if a warm
# run allocates more than 300k/iteration, if restart-from-snapshot misses
# 3x over cold or changes a result, if caching changes a result, or — on
# machines with >= 4 CPUs — if tree-parallel misses 2x iters/sec or
# worsens the best cost. Pass COMPARE=old.json to print per-metric deltas
# (including allocs/iter) before the gates.
bench-json:
	$(GO) run ./cmd/searchbench -out BENCH_search.json -max-allocs-per-iter 300000 $(if $(COMPARE),-compare $(COMPARE))

# bench-serving regenerates BENCH_serving.json: the open-loop load harness
# (cmd/mctsload) drives an in-process daemon with the built-in two-class
# smoke spec and reports per-class p50/p95/p99 latency, throughput, goodput,
# 429/503 rates, SSE time-to-first-event, and the daemon's cache/admission
# curves. Gates (p99 budget, goodput floor) are recorded always but enforced
# only on machines with >= 4 CPUs. Pass COMPARE=old.json for per-metric
# deltas before the gates.
bench-serving:
	$(GO) run ./cmd/mctsload -out BENCH_serving.json $(if $(COMPARE),-compare $(COMPARE))

# bench-serving-fleet is the fleet variant of bench-serving: the same
# open-loop smoke spec driven through an in-process mctsrouter over two
# in-process replicas (affinity policy), so the router hop sits inside the
# measured p99/goodput budgets. Same gates and >= 4 CPU enforcement guard.
bench-serving-fleet:
	$(GO) run ./cmd/mctsload -fleet 2 -fleet-policy affinity -out BENCH_serving_fleet.json $(if $(COMPARE),-compare $(COMPARE))

# fleet mirrors the CI fleet gate: the multi-replica router suite (ring
# stability under churn, policy unit tests, session affinity over live
# daemons, kill-a-replica failover, drain + warm-handoff byte-identity)
# plus the daemon-side liveness/readiness split, race-enabled.
fleet:
	$(GO) test -race -count=1 ./internal/router
	$(GO) test -race -count=1 -run 'TestReadinessGate|TestDrainReturnsBestSoFar' ./internal/server

# load-smoke is the quick serving sanity check: a short low-rate run with
# gates disabled — proves the daemon serves multi-class open-loop traffic
# end to end without judging performance.
load-smoke:
	$(GO) run ./cmd/mctsload -out - -duration-ms 3000 -warmup-ms 1000 \
		-rate-scale 0.5 -max-p99-ms 0 -min-goodput 0

# race-tree runs the tree-parallel race suite CI gates on: shared-tree
# stress, virtual-loss accounting invariants, TreeWorkers=1 bit-identity.
race-tree:
	$(GO) test -race -count=2 -run 'TreeParallel|TreeWorkers|VirtualLoss' ./internal/mcts ./internal/core .

# golden regenerates the end-to-end fixtures under testdata/golden/ (run it
# after an intentional change to search or cost semantics, then review the
# diff like any other code change).
golden:
	$(GO) test -run TestGoldenFixtures . -args -update-golden

# fuzz-smoke runs each fuzz target briefly (CI runs the same); longer local
# campaigns: go test ./internal/sqlparser -fuzz FuzzParseRenderRoundTrip
fuzz-smoke:
	$(GO) test ./internal/sqlparser -run '^$$' -fuzz FuzzParseRenderRoundTrip -fuzztime 10s
	$(GO) test ./internal/sqlparser -run '^$$' -fuzz FuzzParseRenderMultiTable -fuzztime 10s
	$(GO) test ./internal/codec -run '^$$' -fuzz FuzzUnmarshal -fuzztime 10s
	$(GO) test ./internal/eval -run '^$$' -fuzz FuzzLoadSnapshot -fuzztime 10s

# join-scenarios mirrors the CI acceptance step for the multi-table grammar:
# end-to-end join/union/subquery generation, golden fixtures, and a
# searchbench run on the sdss-join workload.
join-scenarios:
	$(GO) test -race -count=1 -run 'TestJoinScenario|TestGoldenFixtures' .
	$(GO) test -count=1 -run 'Join|MultiTable|Union|Subquery|Structural' \
		./internal/sqlparser ./internal/engine ./internal/rules ./internal/cost ./internal/workload ./internal/core
	$(GO) run ./cmd/searchbench -out /tmp/bench-join.json -workload sdss-join -tree-workers 0 -min-speedup 0

# mctsvet runs the standard `go vet` passes plus the repo's custom
# determinism/concurrency analyzers (detmap, wallclock, slicealias,
# cachewrite, directive) — see README "Static analysis". Offline-capable:
# it is part of verify, which subsumes the plain vet target.
mctsvet:
	$(GO) run ./cmd/mctsvet ./...

# lint is the full static-analysis gate: mctsvet plus the network-fetched
# checkers CI pins (staticcheck, govulncheck).
lint: mctsvet staticcheck govulncheck

# staticcheck runs the pinned version CI uses (installs on demand).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

# govulncheck scans the module and its call graph against the Go
# vulnerability database (pinned; installs on demand).
govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@v1.1.4 ./...

# serve runs the long-lived daemon locally (see README "Serving").
serve:
	$(GO) run ./cmd/mctsuid
