GO ?= go

.PHONY: verify build vet fmt test bench

# verify is the tier-1 gate: build, vet, formatting, and the full test suite.
verify: build vet fmt test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# bench runs the benchmark suite once (includes BenchmarkGenerateWorkers,
# the root-parallelization scaling check).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
