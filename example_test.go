package mctsui_test

import (
	"fmt"

	mctsui "repro"
	"repro/internal/engine"
)

// Example_generate shows the end-to-end flow on the paper's Figure 1 log.
// (Outputs depend on the search seed and cost constants, so the examples
// are compile-checked rather than output-verified.)
func Example_generate() {
	iface, err := mctsui.Generate([]string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"SELECT Costs FROM sales WHERE cty = EUR",
		"SELECT Costs FROM sales",
	}, mctsui.Config{Iterations: 20, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Print(iface.ASCII())
	fmt.Printf("cost = %.2f\n", iface.Cost())
}

// Example_session drives a generated interface widget by widget.
func Example_session() {
	iface, _ := mctsui.Generate([]string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"SELECT Costs FROM sales",
	}, mctsui.Config{Iterations: 10, Seed: 1})
	sess := iface.NewSession()
	_ = sess.LoadQuery("SELECT Sales FROM sales WHERE cty = USA")
	_ = sess.Set(0, 1)
	sql, _ := sess.SQL()
	fmt.Println(sql)
}

// Example_execute runs the current query against an in-memory database and
// prints the recommended visualization.
func Example_execute() {
	iface, _ := mctsui.Generate([]string{
		"select count(*) from stars where u between 0 and 30",
		"select count(*) from stars where u between 5 and 25",
	}, mctsui.Config{Iterations: 10, Seed: 1})
	sess := iface.NewSession()
	db := engine.SDSSDB(100, 1)
	_, spec, err := sess.Execute(db)
	if err != nil {
		panic(err)
	}
	fmt.Println(spec.Type)
}
