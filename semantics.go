package mctsui

// The paper's "Ongoing Work" section names two extensions, both implemented
// here: (1) integrating with a query engine so semantically invalid widget
// combinations can be detected, and (2) using co-occurrence of subtrees in
// the query log to flag unlikely combinations of widget choices.

import (
	"sort"

	"repro/internal/difftree"
	"repro/internal/engine"
	"repro/internal/sqlparser"
)

// SemanticReport summarizes engine-backed validation of an interface: how
// many of its expressible queries actually execute against a database.
type SemanticReport struct {
	Checked    int      // queries enumerated (capped)
	Executable int      // queries the engine accepted
	Errors     []string // first few engine errors, for diagnostics
}

// Fraction returns Executable/Checked (1 when nothing was checked).
func (r SemanticReport) Fraction() float64 {
	if r.Checked == 0 {
		return 1
	}
	return float64(r.Executable) / float64(r.Checked)
}

// ValidateSemantics enumerates up to limit expressible queries and executes
// each against db, reporting how many are semantically valid. This is the
// paper's proposed query-engine integration: interfaces whose widgets can
// express nonsense (e.g. a BETWEEN with a missing bound after aggressive
// factoring) score below 1.
func (f *Interface) ValidateSemantics(db *engine.DB, limit int) SemanticReport {
	var rep SemanticReport
	const maxErrors = 5
	for _, q := range difftree.EnumerateQueries(f.res.DiffTree, limit, 2) {
		rep.Checked++
		if _, err := engine.Exec(db, q); err != nil {
			if len(rep.Errors) < maxErrors {
				rep.Errors = append(rep.Errors, sqlparser.Render(q)+": "+err.Error())
			}
			continue
		}
		rep.Executable++
	}
	return rep
}

// Plausibility scores the session's current widget combination against the
// query log using pairwise co-occurrence: for every pair of currently
// active choice nodes, did any log query use this exact pair of values? It
// returns the fraction of observed pairs (1.0 = every pair was seen in the
// log; low values flag combinations the analyst never used).
func (s *Session) Plausibility() float64 {
	f := s.iface
	f.buildCooccur()
	q, err := s.Query()
	if err != nil {
		return 0
	}
	asg, ok := difftree.Express(f.res.DiffTree, q)
	if !ok {
		return 0
	}
	// Deterministic order for reproducible scores.
	ordered := orderedNodes(f.res.DiffTree, asg)
	pairs, seen := 0, 0
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			a, b := ordered[i], ordered[j]
			pairs++
			if f.cooccur[pairKey{a, asg[a], b, asg[b]}] {
				seen++
			}
		}
	}
	if pairs == 0 {
		return 1
	}
	return float64(seen) / float64(pairs)
}

type pairKey struct {
	a  *difftree.Node
	av string
	b  *difftree.Node
	bv string
}

// buildCooccur indexes, once per interface, every pair of (choice, value)
// assignments observed across the log queries.
func (f *Interface) buildCooccur() {
	if f.cooccur != nil {
		return
	}
	f.cooccur = make(map[pairKey]bool)
	for _, q := range f.res.Log {
		asg, ok := difftree.Express(f.res.DiffTree, q)
		if !ok {
			continue
		}
		ordered := orderedNodes(f.res.DiffTree, asg)
		for i := 0; i < len(ordered); i++ {
			for j := i + 1; j < len(ordered); j++ {
				a, b := ordered[i], ordered[j]
				f.cooccur[pairKey{a, asg[a], b, asg[b]}] = true
			}
		}
	}
}

// orderedNodes returns the assignment's choice nodes sorted by their
// pre-order position in the difftree, so pair keys are direction-stable
// regardless of map-iteration order.
func orderedNodes(root *difftree.Node, asg difftree.Assignment) []*difftree.Node {
	pos := make(map[*difftree.Node]int)
	i := 0
	difftree.WalkPath(root, func(n *difftree.Node, _ difftree.Path) bool {
		pos[n] = i
		i++
		return true
	})
	out := make([]*difftree.Node, 0, len(asg))
	for n := range asg {
		out = append(out, n)
	}
	sort.Slice(out, func(a, b int) bool { return pos[out[a]] < pos[out[b]] })
	return out
}
