package mctsui

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/htmlpage"
	"repro/internal/sqlparser"
)

// MarshalJSON serializes the interface (difftree + widget tree + input log)
// so it can be stored and reloaded without re-running the search.
func (f *Interface) MarshalJSON() ([]byte, error) {
	return codec.Marshal(f.res.DiffTree, f.res.UI, f.QueryLog())
}

// LoadInterface reconstructs an interface from MarshalJSON output. The cost
// breakdown is re-evaluated against the given screen (cost is derived data).
func LoadInterface(data []byte, screen Screen) (*Interface, error) {
	diff, ui, queries, err := codec.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	if screen == (Screen{}) {
		screen = WideScreen
	}
	log := make([]*ast.Node, 0, len(queries))
	for i, q := range queries {
		n, err := sqlparser.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("mctsui: stored query %d: %w", i+1, err)
		}
		log = append(log, n)
	}
	model := cost.Default(screen)
	bd := model.NewEvaluator(diff, log).Evaluate(ui)
	return &Interface{res: &core.Result{
		DiffTree: diff,
		UI:       ui,
		Cost:     bd,
		Log:      log,
	}}, nil
}

// QueryLog returns the interface's input log rendered back to SQL — the
// canonical query sequence an identical offline Generate (or a warm-started
// incremental regeneration) would run over. Indices match the original log
// order.
func (f *Interface) QueryLog() []string {
	queries := make([]string, len(f.res.Log))
	for i, q := range f.res.Log {
		queries[i] = sqlparser.Render(q)
	}
	return queries
}

// Page renders the interface as a self-contained interactive HTML page: the
// widgets are live form controls and an embedded JavaScript port of the
// query generator shows the current SQL on every interaction.
func (f *Interface) Page(title string) (string, error) {
	return htmlpage.Render(f.res.DiffTree, f.res.UI, f.QueryLog(), title)
}

// GenerateMulti splits a mixed query log into structurally coherent clusters
// (one analysis task each) and generates one interface per cluster. Real
// logs interleave unrelated tasks; a single interface over all of them
// degenerates into one giant query picker, while per-cluster interfaces
// recover the paper's setting. Clusters appear in first-query log order.
func GenerateMulti(queries []string, cfg Config) ([]*Interface, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("mctsui: empty query log")
	}
	log := make([]*ast.Node, len(queries))
	for i, q := range queries {
		n, err := sqlparser.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("mctsui: query %d: %w", i+1, err)
		}
		log[i] = n
	}
	clusters := cluster.Split(log, cluster.Options{})
	out := make([]*Interface, 0, len(clusters))
	for _, c := range clusters {
		iface, err := GenerateFromASTs(c.Queries, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, iface)
	}
	return out, nil
}
